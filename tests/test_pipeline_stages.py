"""Unit tests for the per-stage sub-cache (:mod:`repro.pipeline.stages`).

The end-to-end staged == monolithic property lives in
``tests/test_stage_differential.py``; these tests pin down the
:class:`StageCache` mechanics themselves -- keying, tier behaviour, disk
persistence, size-aware eviction, corrupt-artefact recovery and
concurrent sharing.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.pipeline import (
    BatchCompiler,
    CompilationCache,
    CompileJob,
    StageCache,
    file_fingerprint,
)
from repro.pipeline.stages import STAGE_DIR_NAME
from repro.testing import build_chain_design, build_random_design, mutate_design

# A few cases drive the cache through the deprecated BatchCompiler facade
# on purpose (its stage-cache interaction must stay identical).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

TYPES = ("type byte_t = Stream(Bit(8), d=1);", "types.td")
DESIGN = (
    "streamlet echo_s { i: byte_t in, o: byte_t out, }\n"
    "impl echo_i of echo_s { i => o, }\n"
    "top echo_i;",
    "design.td",
)
OPTIONS = {"include_stdlib": False}


class TestFileFingerprint:
    def test_deterministic(self):
        assert file_fingerprint("a", "f.td") == file_fingerprint("a", "f.td")

    def test_text_changes_key(self):
        assert file_fingerprint("a", "f.td") != file_fingerprint("b", "f.td")

    def test_filename_changes_key(self):
        # The filename is embedded in spans and diagnostics, so the same
        # text under a different name is a different parse artefact.
        assert file_fingerprint("a", "f.td") != file_fingerprint("a", "g.td")


class TestEvaluateKey:
    def test_downstream_options_do_not_participate(self):
        cache = StageCache()
        base = cache.evaluate_key([TYPES, DESIGN], OPTIONS)
        relaxed = cache.evaluate_key(
            [TYPES, DESIGN], {**OPTIONS, "run_drc": False, "sugaring": False, "strict_drc": False}
        )
        assert base == relaxed

    def test_evaluate_options_participate(self):
        cache = StageCache()
        base = cache.evaluate_key([TYPES, DESIGN], OPTIONS)
        assert cache.evaluate_key([TYPES, DESIGN], {**OPTIONS, "top": "echo_i"}) != base
        assert cache.evaluate_key([TYPES, DESIGN], {**OPTIONS, "project_name": "x"}) != base
        assert cache.evaluate_key([TYPES, DESIGN], {**OPTIONS, "include_stdlib": True}) != base

    def test_file_order_participates(self):
        cache = StageCache()
        assert cache.evaluate_key([TYPES, DESIGN], OPTIONS) != cache.evaluate_key(
            [DESIGN, TYPES], OPTIONS
        )


class TestParseTier:
    def test_one_file_edit_reparses_only_that_file(self):
        cache = StageCache()
        cache.compile([TYPES, DESIGN], OPTIONS)
        assert cache.stats.parse_misses == 2

        edited = (TYPES[0] + "// touched\n", TYPES[1])
        cache.compile([edited, DESIGN], OPTIONS)
        assert cache.stats.parse_misses == 3  # only the edited file
        assert cache.stats.parse_hits == 1  # design.td served from cache

    def test_parse_errors_propagate_and_are_not_cached(self):
        from repro.errors import TydiSyntaxError

        cache = StageCache()
        for _ in range(2):
            with pytest.raises(TydiSyntaxError):
                cache.cached_parse("streamlet broken {", "bad.td")
        assert cache.stats.parse_misses == 0
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StageCache(max_parse_entries=0)
        with pytest.raises(ValueError):
            StageCache(max_evaluate_entries=0)

    def test_parse_lru_bounded(self):
        cache = StageCache(max_parse_entries=2)
        for index in range(5):
            cache.cached_parse(f"const c{index} = {index};", f"f{index}.td")
        assert len(cache) == 2


class TestEvaluateTier:
    def test_snapshot_reused_across_downstream_option_changes(self):
        cache = StageCache()
        full = cache.compile([TYPES, DESIGN], OPTIONS)
        relaxed = cache.compile([TYPES, DESIGN], {**OPTIONS, "run_drc": False})
        assert cache.stats.evaluate_misses == 1
        assert cache.stats.evaluate_hits == 1
        assert relaxed.drc is None
        assert full.ir_text() == relaxed.ir_text()

    def test_snapshot_is_immutable_across_reuse(self):
        """Sugaring mutates the project -- the stored snapshot must not see it."""
        rng = random.Random(5)
        sources = build_random_design(rng)
        cache = StageCache()
        first = cache.compile(sources, OPTIONS)
        second = cache.compile(sources, OPTIONS)
        third = cache.compile(sources, OPTIONS)
        assert first.ir_text() == second.ir_text() == third.ir_text()
        # Each reuse starts from the pristine post-evaluate state, so the
        # sugaring report is rebuilt identically, never doubled.
        assert first.sugaring.summary() == second.sugaring.summary() == third.sugaring.summary()


class TestDiskTier:
    def test_stage_artefacts_persist_across_instances(self, tmp_path):
        first = StageCache(cache_dir=tmp_path)
        first.compile([TYPES, DESIGN], OPTIONS)
        stage_dir = tmp_path / STAGE_DIR_NAME
        assert list(stage_dir.glob("ast-*.pkl")) and list(stage_dir.glob("eval-*.pkl"))

        # A new instance (e.g. another process) hits both tiers from disk.
        second = StageCache(cache_dir=tmp_path)
        second.compile([TYPES, DESIGN], OPTIONS)
        assert second.stats.evaluate_hits == 1
        assert second.stats.parse_misses == 0

    def test_corrupt_stage_artefact_is_a_miss_not_a_crash(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        cache.compile([TYPES, DESIGN], OPTIONS)
        for path in (tmp_path / STAGE_DIR_NAME).glob("*.pkl"):
            path.write_bytes(b"\x80\x05not a pickle at all")

        fresh = StageCache(cache_dir=tmp_path)
        result = fresh.compile([TYPES, DESIGN], OPTIONS)
        assert result.project.top == "echo_i"
        assert fresh.stats.disk_errors >= 1
        assert fresh.stats.evaluate_misses == 1

    def test_clear_disk(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        cache.compile([TYPES, DESIGN], OPTIONS)
        cache.clear(disk=True)
        assert not list((tmp_path / STAGE_DIR_NAME).glob("*.pkl"))
        assert len(cache) == 0


class TestDiskEviction:
    def test_budget_bounds_stage_artefacts(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path, max_disk_bytes=8 * 1024)
        for index in range(6):
            sources = build_chain_design(3)
            tweaked = [(text + f"// v{index}\n", name) for text, name in sources]
            cache.compile(tweaked, OPTIONS)
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.pkl"))
        assert total <= 8 * 1024
        assert cache.stats.disk_evictions > 0

    def test_recently_used_artefacts_survive(self, tmp_path):
        import os
        import time

        cache = StageCache(cache_dir=tmp_path, max_disk_bytes=1024 * 1024)
        cache.cached_parse(*TYPES)
        cache.cached_parse(*DESIGN)
        stage_dir = tmp_path / STAGE_DIR_NAME
        paths = sorted(stage_dir.glob("ast-*.pkl"))
        assert len(paths) == 2
        # Make the first artefact look stale and the second recently used.
        now = time.time()
        os.utime(paths[0], (now - 1000, now - 1000))
        os.utime(paths[1], (now, now))
        cache.max_disk_bytes = paths[1].stat().st_size
        cache.enforce_disk_budget()
        assert not paths[0].exists()
        assert paths[1].exists()

    def test_process_batch_respects_disk_budget(self, tmp_path):
        """--max-cache-mb shape: workers and the parent fold both enforce."""
        budget = 8 * 1024
        cache = CompilationCache(cache_dir=tmp_path, max_disk_bytes=budget)
        jobs = [
            CompileJob(
                name=f"d{index}",
                sources=tuple(build_chain_design(3 + index % 2)),
                include_stdlib=False,
            )
            for index in range(5)
        ]
        outcome = BatchCompiler(cache=cache, executor="process", max_workers=2).compile_batch(jobs)
        assert outcome.ok
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.pkl"))
        assert total <= budget

    def test_clear_cascades_to_stage_tiers(self, tmp_path):
        from repro.lang.compile import compile_sources

        cache = CompilationCache(cache_dir=tmp_path)
        compile_sources([TYPES, DESIGN], include_stdlib=False, cache=cache)
        assert len(cache.stages) > 0
        cache.clear(disk=True)
        assert len(cache.stages) == 0
        assert not list(tmp_path.rglob("*.pkl"))

    def test_whole_cache_budget_covers_both_tiers(self, tmp_path):
        """CompilationCache(max_disk_bytes=...) bounds result + stage pkls."""
        cache = CompilationCache(cache_dir=tmp_path, max_disk_bytes=16 * 1024)
        from repro.lang.compile import compile_sources

        for index in range(6):
            sources = [(TYPES[0] + f"const v{index} = {index};\n", TYPES[1]), DESIGN]
            compile_sources(sources, include_stdlib=False, cache=cache)
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.pkl"))
        assert total <= 16 * 1024
        assert cache.stats.disk_evictions + cache.stages.stats.disk_evictions > 0


class TestConcurrency:
    def test_two_batch_runs_share_one_cache_and_disk(self, tmp_path):
        """Two thread-executor batches racing on one cache + one disk dir.

        Both must succeed with byte-identical results and leave only whole,
        loadable artefacts behind (atomic write-to-temp-then-rename: no
        torn pickles, no leftover temp files).
        """
        rng = random.Random(99)
        designs = [build_random_design(rng) for _ in range(6)]
        jobs = [
            CompileJob(name=f"d{index}", sources=tuple(sources), include_stdlib=False)
            for index, sources in enumerate(designs)
        ]
        cache = CompilationCache(cache_dir=tmp_path)
        outcomes = [None, None]
        errors = []

        def run(slot: int) -> None:
            try:
                compiler = BatchCompiler(cache=cache, executor="thread", max_workers=4)
                outcomes[slot] = compiler.compile_batch(jobs)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(slot,)) for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert outcomes[0].ok and outcomes[1].ok
        for a, b in zip(outcomes[0].results, outcomes[1].results):
            assert a.name == b.name
            assert a.result.ir_text() == b.result.ir_text()

        # No torn disk writes: every artefact on disk deserialises, and no
        # temp files were left behind by the atomic-rename protocol.
        import pickle

        for path in tmp_path.rglob("*.pkl"):
            pickle.loads(path.read_bytes())
        assert not list(tmp_path.rglob("*.tmp"))

        # A cold instance over the same store serves every design warm.
        fresh = CompilationCache(cache_dir=tmp_path)
        warm = BatchCompiler(cache=fresh, executor="serial").compile_batch(jobs)
        assert warm.ok
        assert all(entry.from_cache for entry in warm.results)

    def test_concurrent_stage_compiles_on_one_stage_cache(self):
        """Raw StageCache sharing: concurrent compiles of overlapping designs."""
        rng = random.Random(123)
        base = build_random_design(rng, min_files=4, max_files=6)
        variants = [base] + [mutate_design(random.Random(i), base)[0] for i in range(5)]
        stage_cache = StageCache()
        results: dict[int, str] = {}
        errors = []

        def run(slot: int) -> None:
            try:
                results[slot] = stage_cache.compile(variants[slot % len(variants)], OPTIONS).ir_text()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(slot,)) for slot in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        from repro.lang.compile import compile_sources

        for slot, ir in results.items():
            reference = compile_sources(variants[slot % len(variants)], include_stdlib=False)
            assert ir == reference.ir_text()


class TestBackendTier:
    TARGETS = ("vhdl", "ir", "dot")

    def test_second_compile_hits_every_unit(self):
        cache = StageCache()
        options = {**OPTIONS, "targets": self.TARGETS}
        first = cache.compile([TYPES, DESIGN], options)
        impl_count = len(first.project.implementations)
        assert cache.stats.backend_misses == impl_count * len(self.TARGETS)
        cache.stats.reset()
        second = cache.compile([TYPES, DESIGN], options)
        assert cache.stats.backend_hits == impl_count * len(self.TARGETS)
        assert cache.stats.backend_misses == 0
        for target in self.TARGETS:
            assert list(second.outputs[target].items()) == list(first.outputs[target].items())

    def test_unit_outputs_shared_across_designs(self):
        """Two designs containing a byte-identical implementation reuse its
        unit output: the key is the implementation fingerprint, not the
        design fingerprint."""
        cache = StageCache()
        options = {**OPTIONS, "targets": ("vhdl",)}
        cache.compile([TYPES, DESIGN], options)
        cache.stats.reset()
        # Same design plus an unrelated comment in a *new* file: whole-result
        # and evaluate keys change, but every implementation is unchanged.
        extra = ("// unrelated comment file", "comment.td")
        result = cache.compile([TYPES, DESIGN, extra], options)
        assert cache.stats.backend_hits == len(result.project.implementations)
        assert cache.stats.backend_misses == 0

    def test_options_participate_in_unit_key(self):
        from repro.backends import DotBackendOptions, get_backend

        cache = StageCache()
        result = cache.compile([TYPES, DESIGN], OPTIONS)
        plain = cache.emit_backend(result.project, get_backend("dot"))
        highlighted = cache.emit_backend(
            result.project, get_backend("dot", DotBackendOptions(highlight=("echo_i.i",)))
        )
        assert plain != highlighted
        assert cache.stats.backend_misses == 2 * len(result.project.implementations)

    def test_options_token_change_invalidates_without_fingerprint_change(self):
        """A new options ``token()`` alone must miss the unit cache.

        The implementation fingerprint is content-addressed over the
        emission subgraph, so it cannot see backend options; the unit key
        folds the token in separately.  If it ever stopped doing so, a
        ``--backend-opt`` change would silently serve stale artefacts.
        """
        from repro.backends import (
            DotBackendOptions,
            get_backend,
            implementation_fingerprint,
        )

        cache = StageCache()
        result = cache.compile([TYPES, DESIGN], OPTIONS)
        project = result.project
        plain_backend = get_backend("dot")
        tweaked_backend = get_backend("dot", DotBackendOptions(rankdir="TB"))
        assert plain_backend.options.token() != tweaked_backend.options.token()

        for impl in project.implementations.values():
            fingerprint = implementation_fingerprint(project, impl)
            # Same content address under both option sets...
            assert cache.backend_unit_key(
                plain_backend, fingerprint
            ) != cache.backend_unit_key(tweaked_backend, fingerprint)

        cache.emit_backend(project, plain_backend)
        assert cache.stats.backend_misses == len(project.implementations)
        cache.stats.reset()
        # The changed token is a full miss, not a stale hit...
        cache.emit_backend(project, tweaked_backend)
        assert cache.stats.backend_misses == len(project.implementations)
        assert cache.stats.backend_hits == 0
        cache.stats.reset()
        # ...and the original options are still warm.
        cache.emit_backend(project, plain_backend)
        assert cache.stats.backend_hits == len(project.implementations)
        assert cache.stats.backend_misses == 0

    def test_disk_tier_round_trip(self, tmp_path):
        options = {**OPTIONS, "targets": ("vhdl",)}
        writer = StageCache(cache_dir=tmp_path)
        first = writer.compile([TYPES, DESIGN], options)
        assert list((tmp_path / STAGE_DIR_NAME).glob("backend-*.pkl"))

        reader = StageCache(cache_dir=tmp_path)
        second = reader.compile([TYPES, DESIGN], options)
        assert reader.stats.backend_hits == len(second.project.implementations)
        assert reader.stats.backend_misses == 0
        assert list(second.outputs["vhdl"].items()) == list(first.outputs["vhdl"].items())

    def test_corrupt_backend_artefact_recovers(self, tmp_path):
        options = {**OPTIONS, "targets": ("vhdl",)}
        writer = StageCache(cache_dir=tmp_path)
        expected = writer.compile([TYPES, DESIGN], options)
        for path in (tmp_path / STAGE_DIR_NAME).glob("backend-*.pkl"):
            path.write_bytes(b"not a pickle")
        reader = StageCache(cache_dir=tmp_path)
        result = reader.compile([TYPES, DESIGN], options)
        assert list(result.outputs["vhdl"].items()) == list(expected.outputs["vhdl"].items())
        assert reader.stats.disk_errors > 0

    def test_one_file_edit_reuses_untouched_units(self):
        sources = build_chain_design(6)
        options = {**OPTIONS, "targets": ("vhdl",)}
        cache = StageCache()
        cache.compile(sources, options)
        # Comment-only edit of one chain step: no implementation changes.
        edited = list(sources)
        text, name = edited[2]
        edited[2] = (text + "// tweak\n", name)
        cache.stats.reset()
        result = cache.compile(edited, options)
        assert cache.stats.backend_hits == len(result.project.implementations)
        assert cache.stats.backend_misses == 0

    def test_clear_drops_backend_tier(self):
        cache = StageCache()
        options = {**OPTIONS, "targets": ("vhdl",)}
        cache.compile([TYPES, DESIGN], options)
        assert len(cache) > 0
        cache.clear()
        cache.stats.reset()
        cache.compile([TYPES, DESIGN], options)
        assert cache.stats.backend_misses > 0
