"""Property-based tests (hypothesis) on the frontend and the simulator."""

from hypothesis import given, settings, strategies as st

from repro.lang.compile import compile_project
from repro.lang.expr import evaluate_expr
from repro.lang.parser import parse_source
from repro.lang.values import Scope
from repro.sim import Simulator
from repro.utils.text import count_loc

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in {"in", "out", "of", "if", "for", "else", "top", "type", "impl", "const"}
)


class TestExpressionProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6), st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=100)
    def test_integer_arithmetic_matches_python(self, a, b):
        scope = Scope()
        scope.define("a", a)
        scope.define("b", b)
        expr = parse_source(f"const v = a * b + a - b;").declarations[0].value
        assert evaluate_expr(expr, scope) == a * b + a - b

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=40)
    def test_bit_width_expression_is_exact(self, digits):
        # ceil(log2(10^digits - 1)) must equal the true bit length of 10^digits - 1.
        scope = Scope()
        scope.define("digits", digits)
        expr = parse_source("const v = ceil(log2(10 ^ digits - 1));").declarations[0].value
        measured = evaluate_expr(expr, scope)
        exact = (10**digits - 1).bit_length()
        assert abs(measured - exact) <= 1  # float log2 may be off by one ulp at the boundary

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_array_literals_roundtrip(self, values):
        literal = "[" + ", ".join(str(v) for v in values) + "]"
        expr = parse_source(f"const v = {literal};").declarations[0].value
        assert evaluate_expr(expr, Scope()) == values

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    @settings(max_examples=60)
    def test_range_expression_matches_python_range(self, start, end):
        expr = parse_source(f"const v = {start} -> {end};").declarations[0].value
        assert evaluate_expr(expr, Scope()) == list(range(start, end))


class TestCompilationProperties:
    @given(
        width=st.integers(min_value=1, max_value=512),
        dimension=st.integers(min_value=0, max_value=3),
        stages=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_pipeline_of_n_stages_always_compiles(self, width, dimension, stages):
        """Any linear pipeline built from a generated stage count is DRC-clean."""
        dim = f", d={dimension}" if dimension else ""
        source = f"""
        type t = Stream(Bit({width}){dim});
        streamlet stage_s {{ input: t in, output: t out, }}
        external impl stage_i of stage_s;
        const stages = {stages};
        streamlet top_s {{ i: t in, o: t out, }}
        impl top_i of top_s {{
            instance u(stage_i) [stages],
            i => u[0].input,
            for k in 0->stages - 1 {{
                u[k].output => u[k + 1].input,
            }}
            u[stages - 1].output => o,
        }}
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert result.drc.passed()
        top = result.project.implementation("top_i")
        assert len(top.instances) == stages
        assert len(top.connections) == stages + 1

    @given(name=identifiers, width=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_ir_emission_loc_scales_with_port_count(self, name, width):
        source = f"""
        type t = Stream(Bit({width}), d=1);
        streamlet {name}_s {{ a: t in, b: t out, }}
        impl {name}_i of {name}_s {{ a => b, }}
        top {name}_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert count_loc(result.ir_text(), "tydi") >= 6


class TestSimulatorProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=0, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_sum_pipeline_conserves_data(self, values):
        """Whatever the stimulus, the summed output equals Python's sum and no
        packet is lost or duplicated inside the design."""
        source = """
        type num = Stream(Bit(64), d=1);
        streamlet top_s { values: num in, total: num out, }
        impl top_i of top_s {
            instance acc(sum_i<type num, type num>),
            values => acc.input,
            acc.output => total,
        }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project)
        simulator.drive("values", values)
        trace = simulator.run()
        assert trace.output_values("total") == [sum(values)]
        input_channel = next(c for c in simulator.channels if c.sink == ("acc", "input"))
        assert input_channel.stats.packets_transferred == max(1, len(values))

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_result_independent_of_channel_capacity(self, values, capacity):
        source = """
        type num = Stream(Bit(64), d=1);
        streamlet top_s { values: num in, doubled_sum: num out, }
        impl top_i of top_s {
            instance two(const_int_generator_i<type num, 2>),
            instance mul(multiplier_i<type num, type num>),
            instance acc(sum_i<type num, type num>),
            values => mul.lhs,
            two.output => mul.rhs,
            mul.output => acc.input,
            acc.output => doubled_sum,
        }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project, channel_capacity=capacity)
        simulator.drive("values", values)
        trace = simulator.run()
        assert trace.output_values("doubled_sum") == [2 * sum(values)]
