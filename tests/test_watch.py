"""Tests of ``tydi-compile --watch`` (the polling loop in :mod:`repro.cli`).

The loop is driven with a **fake clock**: the injected ``sleep`` edits
files on disk instead of waiting, so each "tick" deterministically
presents the loop with a new filesystem state -- no real time passes and
no race with the poller exists.
"""

from __future__ import annotations

import pathlib

import pytest

import repro.cli as cli
from repro.cli import run_watch_loop
from repro.lang.compile import compile_sources
from repro.workspace import Workspace

GOOD = (
    "type link_t = Stream(Bit(8));\n"
    "streamlet pass_s { i: link_t in, o: link_t out, }\n"
    "external impl pass_i of pass_s;\n"
    "top pass_i;\n"
)


class FakeClock:
    """An injectable ``sleep`` that runs scripted actions instead of waiting.

    ``actions[k]`` runs on the k-th tick; once the script is exhausted the
    clock raises ``KeyboardInterrupt`` -- exactly how a user ends a watch
    session.
    """

    def __init__(self, actions):
        self.actions = list(actions)
        self.intervals: list[float] = []

    def __call__(self, interval: float) -> None:
        self.intervals.append(interval)
        if not self.actions:
            raise KeyboardInterrupt
        action = self.actions.pop(0)
        if action is not None:
            action()


def _write(path: pathlib.Path, text: str) -> None:
    path.write_text(text)
    # Force a new mtime signature even on coarse-mtime filesystems: the
    # loop keys on (mtime_ns, size), and the fake clock makes every edit
    # change the size anyway -- but be explicit for same-length rewrites.
    stat = path.stat()
    import os

    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))


class TestRunWatchLoop:
    def test_change_triggers_update_and_refresh(self, tmp_path):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        refreshed: list[tuple[str, list[str]]] = []
        edited = GOOD.replace("Bit(8)", "Bit(16)")
        clock = FakeClock([lambda: _write(source, edited)])
        rounds = run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            lambda design, changed: refreshed.append((design, changed)),
            interval=0.5,
            sleep=clock,
        )
        assert rounds == 1
        assert refreshed == [("design", [str(source)])]
        assert clock.intervals == [0.5, 0.5]  # the interval reaches the clock
        # The workspace saw the edit: its answer matches a fresh compile.
        reference = compile_sources([(edited, str(source))], cache=None)
        assert workspace.ir("design") == reference.ir_text()

    def test_unchanged_file_never_refreshes(self, tmp_path):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        refreshed = []
        clock = FakeClock([None, None, None])  # three idle ticks
        rounds = run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            lambda design, changed: refreshed.append(design),
            interval=0.01,
            sleep=clock,
        )
        assert rounds == 3
        assert refreshed == []

    def test_touch_without_content_change_is_noop(self, tmp_path):
        """A re-save of identical bytes moves the mtime but must not
        recompile: update_file is fingerprint-keyed."""
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        refreshed = []
        clock = FakeClock([lambda: _write(source, GOOD)])
        run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            lambda design, changed: refreshed.append(design),
            interval=0.01,
            sleep=clock,
        )
        assert refreshed == []  # stat moved, fingerprint did not
        assert workspace.is_fresh("design")

    def test_broken_then_fixed_design_recovers(self, tmp_path):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        outcomes: list[bool] = []

        def refresh(design, changed):
            try:
                workspace.result(design)
                outcomes.append(True)
            except Exception:
                outcomes.append(False)

        clock = FakeClock([
            lambda: _write(source, "type ?! broken\n"),
            lambda: _write(source, GOOD + "// fixed\n"),
        ])
        run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            refresh,
            interval=0.01,
            sleep=clock,
        )
        assert outcomes == [False, True]

    def test_vanished_file_is_skipped_not_fatal(self, tmp_path, capsys):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        refreshed = []
        clock = FakeClock([source.unlink, None])
        rounds = run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            lambda design, changed: refreshed.append(design),
            interval=0.01,
            sleep=clock,
        )
        assert rounds == 2  # the loop survived the deletion
        assert refreshed == []

    def test_transient_read_failure_is_retried_next_round(self, tmp_path, capsys):
        """A stat change whose read_text flakes once must be retried: the
        signature is only committed after a successful read."""
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        workspace.result("design")

        class FlakyPath:
            def __init__(self, path):
                self.path = path
                self.fail_next = False

            def stat(self):
                return self.path.stat()

            def read_text(self):
                if self.fail_next:
                    self.fail_next = False
                    raise OSError("transient read failure")
                return self.path.read_text()

            def __str__(self):
                return str(self.path)

        flaky = FlakyPath(source)
        edited = GOOD.replace("Bit(8)", "Bit(16)")

        def edit_and_break():
            _write(source, edited)
            flaky.fail_next = True

        refreshed = []
        clock = FakeClock([edit_and_break, None])  # round 2: same edit, read ok
        run_watch_loop(
            workspace,
            {"design": {str(source): flaky}},
            lambda design, changed: refreshed.append(design),
            interval=0.01,
            sleep=clock,
        )
        assert refreshed == ["design"]  # picked up on the retry round
        reference = compile_sources([(edited, str(source))], cache=None)
        assert workspace.ir("design") == reference.ir_text()
        assert "cannot re-read" in capsys.readouterr().err

    def test_max_rounds_bounds_the_loop(self, tmp_path):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        workspace = Workspace(cache=None)
        workspace.add_design("design", [(GOOD, str(source))])
        never_ending = FakeClock([None] * 100)
        rounds = run_watch_loop(
            workspace,
            {"design": {str(source): source}},
            lambda design, changed: None,
            interval=0.01,
            sleep=never_ending,
            max_rounds=4,
        )
        assert rounds == 4


class TestWatchCli:
    @pytest.fixture(autouse=True)
    def _restore_clock(self):
        original = cli._watch_sleep
        yield
        cli._watch_sleep = original

    def test_single_mode_watch_rewrites_outputs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        ir_out = tmp_path / "out.tir"
        edited = GOOD.replace("Bit(8)", "Bit(16)")
        cli._watch_sleep = FakeClock([lambda: _write(source, edited)])

        code = cli.main(["--watch", "--watch-interval", "0.01",
                         "--ir-out", str(ir_out), str(source)])
        assert code == 0
        reference = compile_sources([(edited, str(source))], cache=None)
        assert ir_out.read_text() == reference.ir_text()
        assert "[watch]" in capsys.readouterr().out

    def test_batch_mode_watch_recompiles_only_changed_design(self, tmp_path, capsys):
        one = tmp_path / "one.td"
        two = tmp_path / "two.td"
        one.write_text(GOOD)
        two.write_text(GOOD.replace("pass", "other"))
        out_dir = tmp_path / "ir"
        edited = GOOD.replace("Bit(8)", "Bit(32)")
        cli._watch_sleep = FakeClock([lambda: _write(one, edited)])

        code = cli.main(["--batch", "--watch", "--watch-interval", "0.01",
                         "--ir-out", str(out_dir), str(one), str(two)])
        assert code == 0
        reference = compile_sources([(edited, str(one))], cache=None, project_name="one")
        assert (out_dir / "one.tir").read_text() == reference.ir_text()
        output = capsys.readouterr().out
        assert "recompiled one" in output
        assert "recompiled two" not in output

    def test_watch_survives_broken_intermediate_state(self, tmp_path, capsys):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        ir_out = tmp_path / "out.tir"
        fixed = GOOD + "// v2\n"
        cli._watch_sleep = FakeClock([
            lambda: _write(source, "type ?! broken\n"),
            lambda: _write(source, fixed),
        ])
        code = cli.main(["--watch", "--watch-interval", "0.01",
                         "--ir-out", str(ir_out), str(source)])
        assert code == 0
        captured = capsys.readouterr()
        assert "error (parse)" in captured.err
        reference = compile_sources([(fixed, str(source))], cache=None)
        assert ir_out.read_text() == reference.ir_text()

    def test_batch_watch_picks_up_initially_unreadable_file(self, tmp_path, capsys):
        """A design whose file was missing at startup is still watched: the
        moment the file appears it is compiled like any other edit."""
        present = tmp_path / "present.td"
        missing = tmp_path / "missing.td"
        present.write_text(GOOD)
        out_dir = tmp_path / "ir"
        late_text = GOOD.replace("pass", "late")
        cli._watch_sleep = FakeClock([lambda: missing.write_text(late_text)])

        code = cli.main(["--batch", "--watch", "--watch-interval", "0.01",
                         "--ir-out", str(out_dir), str(present), str(missing)])
        assert code == 0
        reference = compile_sources(
            [(late_text, str(missing))], cache=None, project_name="missing"
        )
        assert (out_dir / "missing.tir").read_text() == reference.ir_text()
        assert "recompiled missing" in capsys.readouterr().out

    def test_watch_rejects_json(self, tmp_path, capsys):
        source = tmp_path / "w.td"
        source.write_text(GOOD)
        code = cli.main(["--watch", "--json", str(source)])
        assert code == 1
        assert "--watch" in capsys.readouterr().err
