"""Differential harness: registry backends == legacy emission paths.

The tentpole refactor turned ``generate_vhdl`` / ``emit_project`` into (or
left them as) thin legacy entry points next to the registered backends.
This suite proves, over fuzzed designs from the :mod:`repro.testing`
builders, that

* the registry ``vhdl`` backend is **byte-identical** (content *and* file
  order) to the bespoke :meth:`repro.vhdl.backend.VhdlBackend.generate`,
* the registry ``ir`` backend's single file is byte-identical to the
  bespoke :func:`repro.ir.emit.emit_project`,
* the staged pipeline (per-implementation backend-output cache, cold and
  warm) assembles the same outputs as the uncached monolithic path, and
* the TPC-H suite of the paper gets the same treatment as the fuzzed
  designs.
"""

import random

import pytest

from repro.backends import get_backend
from repro.ir.emit import emit_project
from repro.lang.compile import compile_sources
from repro.pipeline import StageCache
from repro.testing import build_random_design, mutate_design
from repro.vhdl.backend import VhdlBackend

#: Number of fuzzed designs (the acceptance criterion demands >= 30).
NUM_DESIGNS = 36


def _fuzzed_designs():
    for seed in range(NUM_DESIGNS):
        rng = random.Random(1000 + seed)
        yield seed, build_random_design(rng)


@pytest.mark.parametrize(
    "seed,sources",
    list(_fuzzed_designs()),
    ids=[f"design{seed}" for seed in range(NUM_DESIGNS)],
)
def test_registry_paths_byte_identical_to_legacy(seed, sources):
    project = compile_sources(sources, include_stdlib=False).project

    registry_vhdl = get_backend("vhdl").emit(project)
    legacy_vhdl = VhdlBackend(project).generate()
    assert list(registry_vhdl.items()) == list(legacy_vhdl.items())

    (registry_ir,) = get_backend("ir").emit(project).values()
    assert registry_ir == emit_project(project)


def test_staged_outputs_equal_monolithic_cold_and_warm():
    """Cold staged, warm staged and monolithic backend outputs all agree."""
    targets = ("vhdl", "ir", "dot")
    stage_cache = StageCache()
    checked = 0
    for seed, sources in _fuzzed_designs():
        if seed % 4:  # a quarter of the corpus keeps this test fast
            continue
        monolithic = compile_sources(sources, include_stdlib=False, targets=targets)
        cold = stage_cache.compile(sources, {"include_stdlib": False, "targets": targets})
        warm = stage_cache.compile(sources, {"include_stdlib": False, "targets": targets})
        for result in (cold, warm):
            assert set(result.outputs) == set(targets)
            for target in targets:
                assert list(result.outputs[target].items()) == list(
                    monolithic.outputs[target].items()
                ), f"seed {seed}, target {target}"
        assert [s.name for s in cold.stages] == [s.name for s in monolithic.stages]
        checked += 1
    assert checked >= 5
    assert stage_cache.stats.backend_hits > 0


def test_one_file_edit_reuses_unit_outputs_and_stays_identical():
    """After a one-file edit the warm emission equals a cold monolithic
    compile of the edited design, while reusing unchanged units."""
    rng = random.Random(7)
    sources = build_random_design(rng, min_files=4, max_files=6)
    targets = ("vhdl", "dot")
    stage_cache = StageCache()
    stage_cache.compile(sources, {"include_stdlib": False, "targets": targets})

    edited, _ = mutate_design(rng, sources)
    stage_cache.stats.reset()
    staged = stage_cache.compile(edited, {"include_stdlib": False, "targets": targets})
    monolithic = compile_sources(edited, include_stdlib=False, targets=targets)
    for target in targets:
        assert list(staged.outputs[target].items()) == list(
            monolithic.outputs[target].items()
        )
    # A comment-only edit changes no implementation; a width edit changes a
    # few.  Either way at least one unit per backend must be a warm hit.
    assert stage_cache.stats.backend_hits >= 2


def test_tpch_suite_registry_equals_legacy(compiled_queries):
    for name, result in compiled_queries.items():
        registry_vhdl = get_backend("vhdl").emit(result.project)
        legacy_vhdl = VhdlBackend(result.project).generate()
        assert list(registry_vhdl.items()) == list(legacy_vhdl.items()), name
        (registry_ir,) = get_backend("ir").emit(result.project).values()
        assert registry_ir == emit_project(result.project), name
