"""Unit tests for the Tydi-lang lexer."""

import pytest

from repro.errors import TydiSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        assert kinds("streamlet foo {}") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
        ]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_integer_with_underscores(self):
        assert tokenize("1_000_000")[0].value == 1000000

    def test_float_literal(self):
        token = tokenize("0.05")[0]
        assert token.kind is TokenKind.FLOAT
        assert token.value == 0.05

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_string_double_quoted(self):
        token = tokenize('"MED BAG"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "MED BAG"

    def test_string_single_quoted(self):
        assert tokenize("'AIR REG'")[0].value == "AIR REG"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b\n"')[0].value == 'a"b\n'

    def test_unterminated_string(self):
        with pytest.raises(TydiSyntaxError):
            tokenize('"oops')

    def test_eof_token_appended(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.EOF


class TestOperators:
    def test_arrow_vs_assign(self):
        assert kinds("a => b") == [TokenKind.IDENT, TokenKind.ARROW, TokenKind.IDENT]
        assert kinds("a = b") == [TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.IDENT]

    def test_range_operator(self):
        assert TokenKind.RANGE in kinds("0->channel")

    def test_comparison_operators(self):
        assert kinds("a <= b >= c == d != e") == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.IDENT,
            TokenKind.GE,
            TokenKind.IDENT,
            TokenKind.EQ,
            TokenKind.IDENT,
            TokenKind.NEQ,
            TokenKind.IDENT,
        ]

    def test_boolean_operators(self):
        assert kinds("a && b || !c") == [
            TokenKind.IDENT,
            TokenKind.AND,
            TokenKind.IDENT,
            TokenKind.OR,
            TokenKind.NOT,
            TokenKind.IDENT,
        ]

    def test_math_operators(self):
        assert kinds("1 + 2 * 3 ^ 4 % 5 / 6") == [
            TokenKind.INT,
            TokenKind.PLUS,
            TokenKind.INT,
            TokenKind.STAR,
            TokenKind.INT,
            TokenKind.CARET,
            TokenKind.INT,
            TokenKind.PERCENT,
            TokenKind.INT,
            TokenKind.SLASH,
            TokenKind.INT,
        ]

    def test_template_brackets(self):
        assert kinds("a<b, 3>") == [
            TokenKind.IDENT,
            TokenKind.LANGLE,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.INT,
            TokenKind.RANGLE,
        ]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(TydiSyntaxError):
            tokenize("a /* oops")

    def test_whitespace_ignored(self):
        assert texts("  a\t\n  b  ") == ["a", "b"]


class TestSpans:
    def test_span_line_numbers(self):
        tokens = tokenize("first\nsecond", "demo.td")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.filename == "demo.td"

    def test_unexpected_character(self):
        with pytest.raises(TydiSyntaxError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)
