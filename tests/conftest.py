"""Shared fixtures and builders.

Fixtures: synthetic TPC-H data and cached compiled query designs.

Builders: the randomized multi-file design generators backing the
staged-vs-monolithic differential harness
(``tests/test_stage_differential.py``).  The implementations live in
:mod:`repro.testing` (the benchmark suite needs the same notion of "an
N-file design with a one-file edit" and has its own conftest namespace);
they are re-exported here so harness code can treat them as test-suite
builders.
"""

from __future__ import annotations

import pytest

from repro.arrow.tpch import generate_tpch_data
from repro.testing import (  # noqa: F401 - shared differential-harness builders
    build_chain_design,
    build_random_design,
    mutate_design,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the pinned expectations under tests/golden/ from the "
        "current outputs instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    """Whether this run regenerates the golden files (``--update-golden``)."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def tpch_tables():
    """A small, seeded TPC-H dataset shared by the integration tests."""
    return generate_tpch_data(200, seed=7)


@pytest.fixture(scope="session")
def tpch_tables_medium():
    """A larger dataset for the selective multi-table queries (Q3/Q5/Q19)."""
    return generate_tpch_data(1200, seed=11)


@pytest.fixture(scope="session")
def compiled_queries():
    """Compile every TPC-H design once per test session."""
    from repro.queries import ALL_QUERIES

    return {query.name: query.compile() for query in ALL_QUERIES}
