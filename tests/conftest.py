"""Shared fixtures: synthetic TPC-H data and cached compiled query designs."""

from __future__ import annotations

import pytest

from repro.arrow.tpch import generate_tpch_data


@pytest.fixture(scope="session")
def tpch_tables():
    """A small, seeded TPC-H dataset shared by the integration tests."""
    return generate_tpch_data(200, seed=7)


@pytest.fixture(scope="session")
def tpch_tables_medium():
    """A larger dataset for the selective multi-table queries (Q3/Q5/Q19)."""
    return generate_tpch_data(1200, seed=11)


@pytest.fixture(scope="session")
def compiled_queries():
    """Compile every TPC-H design once per test session."""
    from repro.queries import ALL_QUERIES

    return {query.name: query.compile() for query in ALL_QUERIES}
