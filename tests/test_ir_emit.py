"""Unit tests for textual Tydi-IR emission."""

import pytest

from repro.errors import TydiBackendError
from repro.ir.emit import (
    emit_implementation,
    emit_project,
    emit_streamlet,
    emit_type_declaration,
    named_type_declarations,
)
from repro.ir.model import Port, PortDirection, Project, Streamlet
from repro.lang.compile import compile_project
from repro.spec.logical_types import Bit, Group, Stream, Union
from repro.utils.text import count_loc


SOURCE = """
Group Sample { value: Bit(12), flag: Bit(1), }
type sample_t = Stream(Sample, d=1);
streamlet filter_s { i: sample_t in, keep: Stream(Bit(1), d=1) in, o: sample_t out, }
external impl filter_prim of filter_s;
streamlet top_s { i: sample_t in, keep: Stream(Bit(1), d=1) in, o: sample_t out, }
impl top_i of top_s {
    instance f(filter_prim),
    i => f.i,
    keep => f.keep,
    f.o => o,
}
top top_i;
"""


class TestEmission:
    def test_type_declaration_emission(self):
        group = Group.of("Pair", lo=Bit(8), hi=Bit(8))
        text = emit_type_declaration(group)
        assert text.startswith("Group Pair {")
        assert "lo: Bit(8);" in text

    def test_union_declaration_emission(self):
        union = Union.of("Value", num=Bit(32), txt=Bit(8))
        text = emit_type_declaration(union)
        assert text.startswith("Union Value {")

    def test_streamlet_emission_uses_named_types(self):
        result = compile_project(SOURCE, include_stdlib=False)
        text = emit_streamlet(result.project.streamlet("top_s"))
        assert "i: Stream(Sample, d=1) in;" in text

    def test_external_impl_emission(self):
        result = compile_project(SOURCE, include_stdlib=False)
        text = emit_implementation(result.project.implementation("filter_prim"))
        assert text.strip().startswith("external impl filter_prim of filter_s;")

    def test_structural_impl_emission(self):
        result = compile_project(SOURCE, include_stdlib=False)
        text = emit_implementation(result.project.implementation("top_i"))
        assert "instance f(filter_prim);" in text
        assert "i => f.i;" in text

    def test_project_emission_contains_everything(self):
        result = compile_project(SOURCE, include_stdlib=False)
        text = emit_project(result.project)
        assert "Group Sample" in text
        assert "streamlet filter_s" in text
        assert "top top_i;" in text

    def test_emitted_ir_has_reasonable_loc(self):
        result = compile_project(SOURCE, include_stdlib=False)
        assert count_loc(emit_project(result.project), "tydi") >= 15

    def test_synthesized_connections_annotated(self):
        source = """
        type t = Stream(Bit(8), d=1);
        streamlet src_s { a: t out, }
        external impl src_i of src_s;
        streamlet snk_s { x: t in, }
        external impl snk_i of snk_s;
        streamlet top_s { }
        impl top_i of top_s {
            instance s(src_i), instance k1(snk_i), instance k2(snk_i),
            s.a => k1.x, s.a => k2.x,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        text = emit_project(result.project)
        assert "// auto-inserted" in text


class TestNamedTypeConflicts:
    @staticmethod
    def _project_with(*types):
        """A project whose streamlet ports carry the given element types."""
        project = Project(name="conflict")
        ports = [
            Port(name=f"p{index}", logical_type=Stream(t, dimension=1), direction=PortDirection.IN)
            for index, t in enumerate(types)
        ]
        project.add_streamlet(Streamlet(name="s", ports=ports))
        return project

    def test_identical_duplicates_collapse(self):
        sample = Group.of("Sample", value=Bit(8))
        named = named_type_declarations(self._project_with(sample, Group.of("Sample", value=Bit(8))))
        assert list(named) == ["Sample"]

    def test_structurally_distinct_types_sharing_a_name_raise(self):
        """Regression: ``setdefault`` silently kept the first of two distinct
        Group types named ``Sample`` and misdeclared every use of the second."""
        a = Group.of("Sample", value=Bit(8))
        b = Group.of("Sample", value=Bit(16))
        project = self._project_with(a, b)
        with pytest.raises(TydiBackendError, match="conflicting declarations of type 'Sample'"):
            named_type_declarations(project)
        with pytest.raises(TydiBackendError, match="Bit\\(8\\).*Bit\\(16\\)"):
            emit_project(project)

    def test_group_union_name_clash_raises(self):
        group = Group.of("Value", num=Bit(8))
        union = Union.of("Value", num=Bit(8))
        with pytest.raises(TydiBackendError, match="conflicting declarations"):
            named_type_declarations(self._project_with(group, union))
