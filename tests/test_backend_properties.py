"""Hypothesis property suite: every registered backend is total and pure.

Drives the randomized design builders of :mod:`repro.testing` (the same
substrate as the staged-vs-monolithic differential harness) through every
backend in the registry and asserts the contract of
:class:`repro.backends.base.Backend`:

* **no crash** -- a valid design emits under every backend,
* **no empty output** -- at least one file, and no file is empty,
* **determinism** -- two independent compile+emit runs of the same design
  produce byte-identical files in identical order, and a mutated design
  still satisfies all of the above,
* **composition law** -- ``emit`` equals ``assemble`` over ``emit_unit``
  pieces (what the per-implementation output cache substitutes into).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.backends import available_backends, get_backend
from repro.lang.compile import compile_sources
from repro.testing import build_random_design, mutate_design


def _emit_all(sources):
    """Compile ``sources`` fresh and emit under every registered backend."""
    project = compile_sources(sources, include_stdlib=False).project
    return {
        name: get_backend(name).emit(project) for name in available_backends()
    }, project


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_every_backend_emits_nonempty_deterministic_output(seed):
    rng = random.Random(seed)
    sources = build_random_design(rng)

    first, _ = _emit_all(sources)
    second, _ = _emit_all(sources)

    for name, files in first.items():
        assert files, f"backend {name!r} emitted no files"
        for filename, text in files.items():
            assert text.strip(), f"backend {name!r} emitted empty {filename!r}"
        # Deterministic across two runs: same bytes, same order.
        assert list(files.items()) == list(second[name].items()), name


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_mutated_designs_still_emit_under_every_backend(seed):
    rng = random.Random(seed)
    sources = build_random_design(rng)
    edited, _ = mutate_design(rng, sources)

    files_by_backend, _ = _emit_all(edited)
    for name, files in files_by_backend.items():
        assert files and all(text.strip() for text in files.values()), name


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_emit_equals_assembled_units(seed):
    rng = random.Random(seed)
    sources = build_random_design(rng)
    project = compile_sources(sources, include_stdlib=False).project
    for name in available_backends():
        backend = get_backend(name)
        units = {
            impl_name: backend.emit_unit(project, implementation)
            for impl_name, implementation in project.implementations.items()
        }
        assembled = backend.assemble(project, backend.emit_shared(project), units)
        assert list(assembled.items()) == list(backend.emit(project).items()), name
