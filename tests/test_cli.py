"""Tests for the ``tydi-compile`` command-line interface."""

import pathlib

import pytest

from repro.cli import build_arg_parser, main


SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "design.td"
    path.write_text(SOURCE)
    return path


class TestCli:
    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args(["x.td"])
        assert args.sources == ["x.td"]
        assert args.top is None
        assert not args.no_stdlib

    def test_successful_compile(self, design_file, capsys):
        assert main([str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "[parse]" in out and "[drc]" in out

    def test_stats_flag(self, design_file, capsys):
        assert main([str(design_file), "--stats"]) == 0
        assert "streamlets:" in capsys.readouterr().out

    def test_ir_output_file(self, design_file, tmp_path):
        ir_path = tmp_path / "out.tir"
        assert main([str(design_file), "--ir-out", str(ir_path)]) == 0
        assert "streamlet echo_s" in ir_path.read_text()

    def test_vhdl_output_directory(self, design_file, tmp_path):
        vhdl_dir = tmp_path / "vhdl"
        assert main([str(design_file), "--vhdl-dir", str(vhdl_dir)]) == 0
        files = list(vhdl_dir.glob("*.vhd"))
        assert any(f.name == "echo_i.vhd" for f in files)

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.td"
        bad.write_text("streamlet s { i: Mystery in, }\nimpl i_impl of s {}\ntop i_impl;")
        assert main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_no_sugaring_flag_propagates(self, tmp_path, capsys):
        source = """
        type t = Stream(Bit(4), d=1);
        streamlet wide_s { a: t out, b: t out, }
        external impl wide_i of wide_s;
        streamlet top_s { o: t out, }
        impl top_i of top_s { instance w(wide_i), w.a => o, }
        top top_i;
        """
        path = tmp_path / "d.td"
        path.write_text(source)
        # Without sugaring the unused output makes the DRC fail.
        assert main([str(path), "--no-sugaring"]) == 1
        assert main([str(path)]) == 0
