"""Tests for the ``tydi-compile`` command-line interface."""

import json
import os
import pathlib

import pytest

from repro.cli import build_arg_parser, main


SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "design.td"
    path.write_text(SOURCE)
    return path


class TestCli:
    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args(["x.td"])
        assert args.sources == ["x.td"]
        assert args.top is None
        assert not args.no_stdlib

    def test_successful_compile(self, design_file, capsys):
        assert main([str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "[parse]" in out and "[drc]" in out

    def test_stats_flag(self, design_file, capsys):
        assert main([str(design_file), "--stats"]) == 0
        assert "streamlets:" in capsys.readouterr().out

    def test_ir_output_file(self, design_file, tmp_path):
        ir_path = tmp_path / "out.tir"
        assert main([str(design_file), "--ir-out", str(ir_path)]) == 0
        assert "streamlet echo_s" in ir_path.read_text()

    def test_vhdl_output_directory(self, design_file, tmp_path):
        vhdl_dir = tmp_path / "vhdl"
        assert main([str(design_file), "--vhdl-dir", str(vhdl_dir)]) == 0
        files = list(vhdl_dir.glob("*.vhd"))
        assert any(f.name == "echo_i.vhd" for f in files)

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.td"
        bad.write_text("streamlet s { i: Mystery in, }\nimpl i_impl of s {}\ntop i_impl;")
        assert main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_no_sugaring_flag_propagates(self, tmp_path, capsys):
        source = """
        type t = Stream(Bit(4), d=1);
        streamlet wide_s { a: t out, b: t out, }
        external impl wide_i of wide_s;
        streamlet top_s { o: t out, }
        impl top_i of top_s { instance w(wide_i), w.a => o, }
        top top_i;
        """
        path = tmp_path / "d.td"
        path.write_text(source)
        # Without sugaring the unused output makes the DRC fail.
        assert main([str(path), "--no-sugaring"]) == 1
        assert main([str(path)]) == 0

    def test_same_basename_in_different_dirs_distinguishable(self, tmp_path, capsys, monkeypatch):
        """Regression: sources used to be keyed by basename only, making two
        inputs named ``top.td`` in different directories indistinguishable."""
        monkeypatch.chdir(tmp_path)
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
        (tmp_path / "a" / "top.td").write_text("type good_t = Stream(Bit(8), d=1);")
        # The failing file: its diagnostics must name b/top.td, not just top.td.
        (tmp_path / "b" / "top.td").write_text("type bad_t = Stream(Mystery, d=1);\ntop nothing;")
        assert main([os.path.join("a", "top.td"), os.path.join("b", "top.td")]) == 1
        err = capsys.readouterr().err
        assert os.path.join("b", "top.td") in err


class TestCliCache:
    def test_cache_dir_single_design(self, design_file, tmp_path, capsys):
        cache_dir = tmp_path / ".tydi-cache"
        assert main([str(design_file), "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("*.pkl"))
        capsys.readouterr()
        # Warm run: same design served from the on-disk store.
        assert main([str(design_file), "--cache-dir", str(cache_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["disk_hits"] == 1

    def test_json_output_single_design(self, design_file, capsys):
        assert main([str(design_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload["stages"]] == ["parse", "evaluate", "sugaring", "drc", "ir"]
        assert payload["statistics"]["streamlets"] >= 1
        assert payload["cache"] is None
        assert payload["stage_cache"] is None

    def test_max_cache_mb_reports_stage_stats(self, design_file, tmp_path, capsys):
        cache_dir = tmp_path / ".tydi-cache"
        args = [str(design_file), "--cache-dir", str(cache_dir), "--max-cache-mb", "64", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stage_cache"]["parse_misses"] == 1
        assert list((cache_dir / "stages").glob("*.pkl"))

    def test_max_cache_mb_zero_evicts_everything(self, design_file, tmp_path, capsys):
        """A zero budget still compiles; it just keeps nothing on disk."""
        cache_dir = tmp_path / ".tydi-cache"
        args = [str(design_file), "--cache-dir", str(cache_dir), "--max-cache-mb", "0"]
        assert main(args) == 0
        assert not list(cache_dir.rglob("*.pkl"))

    def test_negative_max_cache_mb_rejected(self, design_file, capsys):
        assert main([str(design_file), "--cache-dir", "x", "--max-cache-mb", "-1"]) == 1
        assert "--max-cache-mb" in capsys.readouterr().err

    def test_max_cache_mb_without_cache_dir_rejected(self, design_file, capsys):
        """The budget flag must not be silently ignored without a cache dir."""
        assert main([str(design_file), "--max-cache-mb", "64"]) == 1
        assert "requires --cache-dir" in capsys.readouterr().err


class TestCliBatch:
    @pytest.fixture()
    def design_dir(self, tmp_path):
        for width in (2, 4, 8):
            (tmp_path / f"w{width}.td").write_text(
                f"type t = Stream(Bit({width}), d=1);\n"
                "streamlet s { i: t in, o: t out, }\n"
                "impl im of s { i => o, }\n"
                "top im;\n"
            )
        return tmp_path

    def _paths(self, design_dir):
        return sorted(str(p) for p in design_dir.glob("*.td"))

    def test_batch_compiles_every_design(self, design_dir, capsys):
        assert main(["--batch", *self._paths(design_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok]") == 3
        assert "batch: 3/3 succeeded" in out

    def test_batch_jobs_and_executor_flags(self, design_dir, capsys):
        argv = ["--batch", "--jobs", "2", "--executor", "serial", *self._paths(design_dir)]
        assert main(argv) == 0
        assert "batch: 3/3 succeeded" in capsys.readouterr().out

    def test_batch_failure_sets_exit_code(self, design_dir, capsys):
        bad = design_dir / "bad.td"
        bad.write_text("streamlet s { i: Mystery in, }\nimpl im of s {}\ntop im;\n")
        assert main(["--batch", *self._paths(design_dir)]) == 1
        out = capsys.readouterr().out
        assert "[failed] bad" in out and out.count("[ok]") == 3

    def test_batch_json_stats(self, design_dir, capsys):
        cache_dir = design_dir / ".tydi-cache"
        argv = ["--batch", "--cache-dir", str(cache_dir), "--json", *self._paths(design_dir)]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["batch"]["jobs"] == 3
        assert cold["batch"]["failed"] == 0
        assert cold["cache"]["stores"] == 3

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["batch"]["cached"] == 3
        assert all(d["status"] == "cached" for d in warm["designs"])

    def test_batch_vhdl_dir_per_design(self, design_dir, tmp_path, capsys):
        vhdl_dir = tmp_path / "vhdl"
        assert main(["--batch", "--vhdl-dir", str(vhdl_dir), *self._paths(design_dir)]) == 0
        assert sorted(p.name for p in vhdl_dir.iterdir()) == ["w2", "w4", "w8"]
        assert any(f.suffix == ".vhd" for f in (vhdl_dir / "w2").iterdir())
        assert "VHDL file(s)" in capsys.readouterr().out

    def test_batch_stats_flag(self, design_dir, capsys):
        assert main(["--batch", "--stats", *self._paths(design_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("streamlets:") == 3

    def test_batch_ir_out_directory(self, design_dir, tmp_path):
        out_dir = tmp_path / "ir"
        assert main(["--batch", "--ir-out", str(out_dir), *self._paths(design_dir)]) == 0
        names = sorted(p.name for p in out_dir.glob("*.tir"))
        assert names == ["w2.tir", "w4.tir", "w8.tir"]
        assert "impl im" in (out_dir / "w2.tir").read_text()

    def test_batch_unreadable_file_is_isolated(self, design_dir, capsys):
        """A missing input is one failed design, not an aborted batch."""
        argv = ["--batch", str(design_dir / "missing.td"), *self._paths(design_dir)]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "[failed] missing (read): cannot read" in out
        assert out.count("[ok]") == 3  # the readable designs still compiled

    def test_batch_ir_out_conflicting_file_clean_error(self, design_dir, tmp_path, capsys):
        conflict = tmp_path / "out.tir"
        conflict.write_text("already a file")
        argv = ["--batch", "--ir-out", str(conflict), *self._paths(design_dir)]
        assert main(argv) == 1
        assert "cannot create directory" in capsys.readouterr().err

    def test_batch_same_basename_gets_unique_names(self, tmp_path, capsys):
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
            (tmp_path / sub / "top.td").write_text(
                "type t = Stream(Bit(4), d=1);\n"
                "streamlet s { i: t in, o: t out, }\n"
                "impl im of s { i => o, }\n"
                "top im;\n"
            )
        argv = ["--batch", str(tmp_path / "a" / "top.td"), str(tmp_path / "b" / "top.td")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[ok]") == 2


class TestCliBackends:
    def test_list_backends(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("vhdl", "verilog", "ir", "tydi-ir", "dot"):
            assert name in out
        # Each backend's option schema rides along (name, type, default).
        assert "--backend-opt dot.rankdir=..." in out
        assert "(str, default 'LR')" in out

    def test_list_backends_json(self, capsys):
        import json as json_module

        assert main(["--list-backends", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload["backends"]}
        assert {"vhdl", "verilog", "ir", "tydi-ir", "dot"} <= set(by_name)
        dot_options = {option["name"]: option for option in by_name["dot"]["options"]}
        assert dot_options["rankdir"] == {
            "name": "rankdir",
            "type": "str",
            "default": "LR",
        }
        assert dot_options["show_types"]["type"] == "bool"
        assert by_name["vhdl"]["options"] == []

    def test_no_sources_without_list_backends_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_target_clean_error(self, design_file, capsys):
        assert main([str(design_file), "--target", "systemc"]) == 1
        err = capsys.readouterr().err
        assert "unknown backend 'systemc'" in err and "vhdl" in err

    def test_single_target_streams_to_stdout(self, design_file, capsys):
        """`tydi-compile --target dot x.td | dot -Tsvg` must pipe clean DOT:
        outputs on stdout, stage log on stderr."""
        assert main([str(design_file), "--target", "dot"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("digraph")
        assert "[parse]" in captured.err and "[parse]" not in captured.out

    def test_all_three_targets_one_invocation_out_dir(self, design_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        argv = [
            str(design_file),
            "--target", "vhdl", "--target", "dot", "--target", "ir",
            "--out-dir", str(out_dir),
        ]
        assert main(argv) == 0
        assert sorted(p.name for p in out_dir.iterdir()) == ["dot", "ir", "vhdl"]
        assert any(f.suffix == ".vhd" for f in (out_dir / "vhdl").iterdir())
        assert (out_dir / "dot" / "design.dot").read_text().startswith("digraph")
        assert "streamlet echo_s" in (out_dir / "ir" / "design.tir").read_text()

    def test_json_reports_outputs_and_backend_cache_stats(self, design_file, tmp_path, capsys):
        cache_dir = tmp_path / ".tydi-cache"
        argv = [
            str(design_file),
            "--target", "vhdl", "--target", "dot", "--target", "ir",
            "--cache-dir", str(cache_dir), "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["outputs"]) == {"vhdl", "dot", "ir"}
        assert payload["outputs"]["dot"] == ["design.dot"]
        assert [s["name"] for s in payload["stages"]][-3:] == [
            "backend:vhdl", "backend:dot", "backend:ir",
        ]
        assert payload["stage_cache"]["backend_misses"] > 0
        assert payload["stage_cache"]["backend_hits"] == 0

    def test_duplicate_targets_collapse(self, design_file, capsys):
        assert main([str(design_file), "--target", "dot", "--target", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.count("digraph") == 1

    def test_batch_targets_out_dir(self, tmp_path, capsys):
        for width in (2, 4):
            (tmp_path / f"w{width}.td").write_text(
                f"type t = Stream(Bit({width}), d=1);\n"
                "streamlet s { i: t in, o: t out, }\n"
                "impl im of s { i => o, }\n"
                "top im;\n"
            )
        out_dir = tmp_path / "out"
        argv = [
            "--batch", "--target", "vhdl", "--target", "dot",
            "--out-dir", str(out_dir),
            str(tmp_path / "w2.td"), str(tmp_path / "w4.td"),
        ]
        assert main(argv) == 0
        assert sorted(p.name for p in out_dir.iterdir()) == ["w2", "w4"]
        assert sorted(p.name for p in (out_dir / "w2").iterdir()) == ["dot", "vhdl"]
        assert "backend output file(s)" in capsys.readouterr().out

    def test_batch_json_includes_output_counts(self, tmp_path, capsys):
        (tmp_path / "d.td").write_text(
            "type t = Stream(Bit(8), d=1);\n"
            "streamlet s { i: t in, o: t out, }\n"
            "impl im of s { i => o, }\n"
            "top im;\n"
        )
        argv = ["--batch", "--target", "vhdl", "--json", str(tmp_path / "d.td")]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["designs"][0]["outputs"] == {"vhdl": 2}

    def test_out_dir_without_target_rejected(self, design_file, capsys):
        assert main([str(design_file), "--out-dir", "out"]) == 1
        assert "--out-dir requires at least one --target" in capsys.readouterr().err

    def test_batch_targets_without_out_dir_hint(self, tmp_path, capsys):
        (tmp_path / "d.td").write_text(
            "type t = Stream(Bit(8), d=1);\n"
            "streamlet s { i: t in, o: t out, }\n"
            "impl im of s { i => o, }\n"
            "top im;\n"
        )
        assert main(["--batch", "--target", "vhdl", str(tmp_path / "d.td")]) == 0
        out = capsys.readouterr().out
        assert "pass --out-dir to write them" in out

    def test_stdout_streaming_keeps_legacy_write_messages_off_stdout(self, design_file, tmp_path, capsys):
        """Regression: `--target dot --ir-out x | dot -Tsvg` must not append
        'wrote Tydi-IR to ...' after the digraph on stdout."""
        ir_path = tmp_path / "x.tir"
        vhdl_dir = tmp_path / "vhdl"
        argv = [
            str(design_file), "--target", "dot",
            "--ir-out", str(ir_path), "--vhdl-dir", str(vhdl_dir),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("digraph")
        assert "wrote" not in captured.out
        assert "wrote Tydi-IR" in captured.err
        assert ir_path.exists()


class TestCliBackendOpts:
    def test_backend_opt_changes_dot_output(self, design_file, capsys):
        assert main([str(design_file), "--target", "dot"]) == 0
        assert 'rankdir="LR"' in capsys.readouterr().out
        assert main([str(design_file), "--target", "dot", "--backend-opt", "dot.rankdir=TB"]) == 0
        assert 'rankdir="TB"' in capsys.readouterr().out

    def test_backend_opt_boolean_coercion(self, design_file, capsys):
        assert main([
            str(design_file), "--target", "dot", "--backend-opt", "dot.show_types=false",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_backend_opt_repeatable_across_backends(self, design_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        argv = [
            str(design_file),
            "--target", "dot", "--target", "ir",
            "--backend-opt", "dot.rankdir=TB",
            "--backend-opt", "dot.highlight=echo",
            "--out-dir", str(out_dir),
        ]
        assert main(argv) == 0
        dot_text = (out_dir / "dot" / "design.dot").read_text()
        assert 'rankdir="TB"' in dot_text

    def test_backend_opt_unknown_key_did_you_mean(self, design_file, capsys):
        assert main([
            str(design_file), "--target", "dot", "--backend-opt", "dot.rankdirr=TB",
        ]) == 1
        err = capsys.readouterr().err
        assert "did you mean 'rankdir'" in err

    def test_backend_opt_unknown_backend_clean_error(self, design_file, capsys):
        assert main([
            str(design_file), "--target", "dot", "--backend-opt", "systemc.x=1",
        ]) == 1
        assert "unknown backend 'systemc'" in capsys.readouterr().err

    def test_backend_opt_malformed_spec_clean_error(self, design_file, capsys):
        assert main([str(design_file), "--backend-opt", "rankdir=TB"]) == 1
        assert "name.key=value" in capsys.readouterr().err

    def test_backend_opt_bad_value_clean_error(self, design_file, capsys):
        assert main([
            str(design_file), "--target", "dot", "--backend-opt", "dot.show_types=maybe",
        ]) == 1
        assert "expected a boolean" in capsys.readouterr().err

    def test_backend_opt_in_batch_mode(self, tmp_path, capsys):
        (tmp_path / "d.td").write_text(
            "type t = Stream(Bit(8), d=1);\n"
            "streamlet s { i: t in, o: t out, }\n"
            "impl im of s { i => o, }\n"
            "top im;\n"
        )
        out_dir = tmp_path / "out"
        argv = [
            "--batch", "--target", "dot",
            "--backend-opt", "dot.rankdir=TB",
            "--out-dir", str(out_dir),
            str(tmp_path / "d.td"),
        ]
        assert main(argv) == 0
        dot_text = (out_dir / "d" / "dot" / "d.dot").read_text()
        assert 'rankdir="TB"' in dot_text

    def test_backend_opt_splits_the_cache_address(self, design_file, tmp_path, capsys):
        """Different backend options are different artefacts: no false hit."""
        cache_dir = tmp_path / ".tydi-cache"
        base = [str(design_file), "--target", "dot", "--cache-dir", str(cache_dir), "--json"]
        assert main(base + ["--backend-opt", "dot.rankdir=TB"]) == 0
        json.loads(capsys.readouterr().out)
        assert main(base + ["--backend-opt", "dot.rankdir=LR"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 0  # a different content address
        assert main(base + ["--backend-opt", "dot.rankdir=LR"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 1  # same options, warm
