"""Tests for the remote L2 cache tier: wire format, server, client, and the
cache-stack integration (lookup order, corruption recovery, degradation)."""

import pickle
import socket
import threading

import pytest

from repro.lang import compile_sources
from repro.pipeline import CompilationCache, RemoteCacheClient, parse_endpoint
from repro.pipeline.remote import (
    DEFAULT_CACHE_PORT,
    pack_put,
    recv_frame,
    send_frame,
    unpack_put,
)
from repro.server.cachesvc import CacheServerThread, CacheStore

SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""

OTHER_SOURCE = SOURCE.replace("Bit(8)", "Bit(16)")


@pytest.fixture()
def server():
    with CacheServerThread() as svc:
        yield svc


def _client(server, **kwargs) -> RemoteCacheClient:
    kwargs.setdefault("retry_interval", 0.05)
    return RemoteCacheClient.from_url(server.endpoint, **kwargs)


def _dead_endpoint() -> str:
    """An endpoint that refuses connections (bound, never accepted, closed)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def _drop_namespace(store: CacheStore, prefix: str) -> int:
    return sum(store.drop(key) for key in store.keys() if key.startswith(prefix))


def _replace_namespace(store: CacheStore, prefix: str, blob: bytes) -> int:
    matched = [key for key in store.keys() if key.startswith(prefix)]
    for key in matched:
        store.put(key, blob)
    return len(matched)


class TestWireFormat:
    def test_parse_endpoint_forms(self):
        assert parse_endpoint("example.com:4781") == ("example.com", 4781)
        assert parse_endpoint("tcp://10.0.0.1:99/") == ("10.0.0.1", 99)
        assert parse_endpoint("example.com") == ("example.com", DEFAULT_CACHE_PORT)

    @pytest.mark.parametrize("bad", ["", "host:", "host:notaport", "host:0", "host:70000"])
    def test_parse_endpoint_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)

    def test_put_roundtrip(self):
        key, blob = "result:" + "a" * 64, b"\x00\xffpayload"
        assert unpack_put(pack_put(key, blob)) == (key, blob)

    def test_put_roundtrip_empty_payload(self):
        assert unpack_put(pack_put("k", b"")) == ("k", b"")

    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"hello")
            send_frame(a, b"")
            assert recv_frame(b) == b"hello"
            assert recv_frame(b) == b""
            a.close()
            assert recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10part")  # claims 16 bytes, sends 4
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_on_send(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError):
                send_frame(a, b"x" * (64 * 1024 * 1024 + 64 * 1024 + 1))
        finally:
            a.close()
            b.close()


class TestCacheStore:
    def test_lru_eviction_into_byte_budget(self):
        store = CacheStore(max_bytes=100)
        store.put("a", b"x" * 60)
        store.put("b", b"y" * 30)
        assert store.get("a") is not None  # refresh a: b is now LRU
        store.put("c", b"z" * 40)  # 130 bytes total: evict b
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.evictions == 1

    def test_entry_bigger_than_budget_leaves_store_empty(self):
        store = CacheStore(max_bytes=10)
        assert store.put("big", b"x" * 20)
        assert len(store) == 0

    def test_oversized_entry_rejected(self):
        store = CacheStore(max_bytes=1000, max_entry_bytes=10)
        assert not store.put("big", b"x" * 11)
        assert store.rejected == 1
        assert len(store) == 0

    def test_replacing_entry_does_not_leak_bytes(self):
        store = CacheStore(max_bytes=100)
        store.put("a", b"x" * 80)
        store.put("a", b"y" * 80)  # same key: must not count 160
        assert store.stats_snapshot()["bytes"] == 80


class TestClientServer:
    def test_get_put_roundtrip(self, server):
        with _client(server) as client:
            assert client.get("result:deadbeef") is None
            client.put("result:deadbeef", b"payload")
            assert client.flush()
            assert client.get("result:deadbeef") == b"payload"
            snap = client.stats_snapshot()
            assert snap["hits"] == 1
            assert snap["misses"] == 1
            assert snap["puts"] == 1
            assert snap["errors"] == 0

    def test_remote_stats_document(self, server):
        with _client(server) as client:
            client.put("k", b"v")
            client.flush()
            doc = client.remote_stats()
            assert doc is not None
            assert doc["entries"] == 1
            assert doc["puts"] == 1

    def test_dead_endpoint_degrades_without_raising(self):
        with RemoteCacheClient.from_url(
            _dead_endpoint(), connect_timeout=0.2, retry_interval=30.0
        ) as client:
            assert client.get("k") is None  # transport error, not an exception
            client.put("k", b"v")
            client.flush(timeout=2.0)
            snap = client.stats_snapshot()
            assert snap["errors"] >= 1
            assert snap["down"] is True
            # While down, lookups skip the network entirely.
            assert client.get("k2") is None
            assert client.stats_snapshot()["skips"] >= 1

    def test_server_killed_mid_run_degrades(self):
        svc = CacheServerThread()
        svc.__enter__()
        client = RemoteCacheClient.from_url(
            svc.endpoint, connect_timeout=0.2, retry_interval=30.0
        )
        try:
            client.put("k", b"v")
            assert client.flush()
            assert client.get("k") == b"v"
            svc.stop()
            assert client.get("k") is None  # miss, never an exception
            client.put("k2", b"w")
            client.flush(timeout=2.0)
            snap = client.stats_snapshot()
            assert snap["errors"] >= 1 or snap["put_drops"] >= 1
        finally:
            client.close()

    def test_queue_overflow_sheds_oldest(self, server):
        client = _client(server, max_pending=2)
        try:
            # Stall the writer by filling the queue faster than it drains is
            # racy; instead exercise the shed path with the endpoint down.
            client._down_until = float("inf")
            for index in range(5):
                client.put(f"k{index}", b"v")
            assert client.stats_snapshot()["put_drops"] >= 3
        finally:
            client.close()

    def test_close_is_idempotent(self, server):
        client = _client(server)
        client.close()
        client.close()
        assert client.get("k") is None  # closed client answers miss-by-skip


class TestCacheIntegration:
    def test_cold_cache_hits_warm_remote_whole_result(self, server, tmp_path):
        with _client(server) as writer:
            warm = CompilationCache(cache_dir=tmp_path / "w", remote=writer)
            expected = compile_sources([(SOURCE, "a.td")], cache=warm)
            assert writer.flush()

        with _client(server) as reader:
            cold = CompilationCache(cache_dir=tmp_path / "c", remote=reader)
            result = compile_sources([(SOURCE, "a.td")], cache=cold)
            assert result.ir_text() == expected.ir_text()
            assert cold.stats.hits == 1
            assert cold.stats.misses == 0
            snap = cold.stats_snapshot()
            assert snap["remote"]["hits"] == 1
            # The hit was promoted to local disk: a rebuilt local-only cache
            # serves it without the remote.
            local = CompilationCache(cache_dir=tmp_path / "c")
            compile_sources([(SOURCE, "a.td")], cache=local)
            assert local.stats.disk_hits == 1
            assert local.stats.misses == 0

    def test_stage_tiers_hit_warm_remote(self, server):
        with _client(server) as writer:
            warm = CompilationCache(remote=writer)
            compile_sources([(SOURCE, "a.td")], cache=warm, targets=["vhdl"])
            assert writer.flush()
            # Drop the whole-result entry so the staged path must run.
            assert _drop_namespace(server.store, "result:") >= 1

        with _client(server) as reader:
            cold = CompilationCache(remote=reader)
            result = compile_sources([(SOURCE, "a.td")], cache=cold, targets=["vhdl"])
            assert result.outputs["vhdl"]
            stage_stats = cold.stages.stats
            assert stage_stats.parse_misses == 0
            assert stage_stats.parse_hits >= 1
            assert stage_stats.evaluate_hits == 1
            assert stage_stats.backend_hits >= 1
            assert reader.stats_snapshot()["corrupt"] == 0

    def test_corrupt_remote_result_is_a_miss(self, server, tmp_path):
        from repro.lang.compile import CompileOptions

        cache = CompilationCache(cache_dir=tmp_path)
        key = cache.key_for([(SOURCE, "a.td")], CompileOptions())
        server.store.put(f"result:{key}", b"not a pickle")
        with _client(server) as client:
            cold = CompilationCache(remote=client)
            result = compile_sources([(SOURCE, "a.td")], cache=cold)
            assert result.project.top == "echo_i"
            snap = client.stats_snapshot()
            assert snap["corrupt"] >= 1
            assert snap["errors"] >= 1

    def test_corrupt_remote_snapshot_is_a_miss(self, server):
        with _client(server) as writer:
            warm = CompilationCache(remote=writer)
            compile_sources([(SOURCE, "a.td")], cache=warm)
            assert writer.flush()
        # Corrupt every eval snapshot in place; asts stay valid.
        corrupted = _replace_namespace(server.store, "eval:", b"not a pickle")
        assert corrupted >= 1
        _drop_namespace(server.store, "result:")
        with _client(server) as reader:
            cold = CompilationCache(remote=reader)
            result = compile_sources([(SOURCE, "a.td")], cache=cold)
            assert result.project.top == "echo_i"
            assert reader.stats_snapshot()["corrupt"] >= 1
            assert cold.stages.stats.evaluate_misses == 1

    def test_wrong_typed_remote_ast_is_a_miss(self, server):
        with _client(server) as writer:
            warm = CompilationCache(remote=writer)
            compile_sources([(SOURCE, "a.td")], cache=warm)
            assert writer.flush()
        # Replace every ast blob with a validly-pickled wrong type.
        swapped = _replace_namespace(
            server.store, "ast:", pickle.dumps({"not": "a SourceUnit"})
        )
        assert swapped >= 1
        _drop_namespace(server.store, "result:")
        with _client(server) as reader:
            cold = CompilationCache(remote=reader)
            result = compile_sources([(SOURCE, "a.td")], cache=cold)
            assert result.project.top == "echo_i"
            assert reader.stats_snapshot()["corrupt"] >= 1

    def test_compile_succeeds_with_dead_remote(self, tmp_path):
        cache = CompilationCache(
            cache_dir=tmp_path,
            remote=RemoteCacheClient.from_url(_dead_endpoint(), connect_timeout=0.2),
        )
        try:
            result = compile_sources([(SOURCE, "a.td")], cache=cache)
            assert result.project.top == "echo_i"
            again = compile_sources([(SOURCE, "a.td")], cache=cache)
            assert again.ir_text() == result.ir_text()
            assert cache.stats.hits == 1
        finally:
            cache.remote.close()

    def test_workspace_rejects_remote_with_explicit_cache(self):
        from repro.errors import TydiWorkspaceError
        from repro.workspace import Workspace

        with pytest.raises(TydiWorkspaceError):
            Workspace(cache=CompilationCache(), remote_cache="127.0.0.1:4781")


class TestConcurrency:
    def test_concurrent_get_put_accounting(self, server):
        with _client(server) as client:
            errors: list[BaseException] = []

            def worker(index: int) -> None:
                try:
                    for round_no in range(25):
                        key = f"k{index}:{round_no % 5}"
                        client.put(key, b"v" * 64)
                        client.get(key)
                except BaseException as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert client.flush()
            snap = client.stats_snapshot()
            # Against a live server every attempted lookup resolves.
            assert snap["gets"] == snap["hits"] + snap["misses"] == 200
            assert snap["puts"] + snap["put_drops"] == 200
            assert snap["pending_puts"] == 0

    def test_stats_snapshot_consistent_under_concurrent_readers(self, server):
        with _client(server) as client:
            stop = threading.Event()
            failures: list[BaseException] = []

            def reader() -> None:
                try:
                    while not stop.is_set():
                        snap = client.stats_snapshot()
                        assert snap["gets"] >= snap["hits"] + snap["misses"] - snap["errors"]
                        assert snap["pending_puts"] >= 0
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            readers = [threading.Thread(target=reader) for _ in range(3)]
            for thread in readers:
                thread.start()
            for index in range(100):
                client.put(f"k{index}", b"v")
                client.get(f"k{index % 10}")
            stop.set()
            for thread in readers:
                thread.join()
            assert not failures
