"""Tests for incremental recompilation (fingerprint diffing).

``IncrementalCompiler`` is the deprecated facade over a persistent
``repro.workspace.Workspace``; this suite keeps exercising it on purpose,
so its deprecation warning is filtered here (see the CI
``-W error::DeprecationWarning`` job)."""

import pytest

from repro.pipeline import CompilationCache, CompileJob, IncrementalCompiler

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def job(name: str, width: int, **options) -> CompileJob:
    source = f"""
type data_t = Stream(Bit({width}), d=1);
streamlet pass_s {{ i: data_t in, o: data_t out, }}
impl pass_i of pass_s {{ i => o, }}
top pass_i;
"""
    return CompileJob(name=name, sources=((source, f"{name}.td"),), **options)


BROKEN = CompileJob(
    name="broken",
    sources=(("streamlet s { i: Mystery in, }\nimpl i_impl of s {}\ntop i_impl;", "broken.td"),),
)


class TestIncrementalCompiler:
    def test_first_round_compiles_everything(self):
        inc = IncrementalCompiler()
        report = inc.update([job("a", 8), job("b", 16)])
        assert sorted(report.compiled) == ["a", "b"]
        assert report.reused == [] and report.removed == []
        assert report.ok
        assert set(report.results) == {"a", "b"}

    def test_unchanged_jobs_are_reused_not_recompiled(self):
        inc = IncrementalCompiler()
        first = inc.update([job("a", 8), job("b", 16)])
        second = inc.update([job("a", 8), job("b", 16)])
        assert second.compiled == [] and sorted(second.reused) == ["a", "b"]
        # Reuse hands back the very same result objects.
        assert second.results["a"] is first.results["a"]

    def test_only_changed_job_recompiles(self):
        inc = IncrementalCompiler()
        inc.update([job("a", 8), job("b", 16)])
        report = inc.update([job("a", 8), job("b", 32)])  # b's source changed
        assert report.compiled == ["b"]
        assert report.reused == ["a"]

    def test_option_change_marks_dirty(self):
        inc = IncrementalCompiler()
        inc.update([job("a", 8)])
        report = inc.update([job("a", 8, sugaring=False)])
        assert report.compiled == ["a"]

    def test_removed_designs_are_dropped(self):
        inc = IncrementalCompiler()
        inc.update([job("a", 8), job("b", 16)])
        report = inc.update([job("a", 8)])
        assert report.removed == ["b"]
        assert inc.result_for("b") is None
        assert inc.known_designs == ["a"]

    def test_failed_design_is_retried_next_round(self):
        inc = IncrementalCompiler()
        report = inc.update([job("a", 8), BROKEN])
        assert not report.ok
        assert "broken" in report.failed and "Mystery" in report.failed["broken"]
        # Same job set again: the good design is reused, the bad one retried.
        again = inc.update([job("a", 8), BROKEN])
        assert again.reused == ["a"]
        assert "broken" in again.failed

    def test_failed_recompile_drops_stale_result(self):
        """A design that compiled once but now fails must not keep serving
        the outdated artefact through result_for()."""
        inc = IncrementalCompiler()
        inc.update([job("design", 8)])
        assert inc.result_for("design") is not None
        broken_edit = CompileJob(name="design", sources=BROKEN.sources)
        report = inc.update([broken_edit])
        assert "design" in report.failed
        assert inc.result_for("design") is None
        assert "design" not in report.results

    def test_fixing_a_failed_design(self):
        inc = IncrementalCompiler()
        inc.update([BROKEN])
        fixed = inc.update([job("broken", 8)])
        assert fixed.compiled == ["broken"] and fixed.ok

    def test_shares_cache_with_other_drivers(self):
        cache = CompilationCache()
        jobs = [job("a", 8)]
        IncrementalCompiler(cache=cache).update(jobs)
        # A second, state-less incremental compiler still hits the cache.
        other = IncrementalCompiler(cache=cache)
        report = other.update(jobs)
        assert report.compiled == ["a"]
        assert cache.stats.hits == 1

    def test_summary_line(self):
        inc = IncrementalCompiler()
        report = inc.update([job("a", 8)])
        assert report.summary() == "1 recompiled, 0 reused, 0 removed, 0 failed"


def multi_file_job(name: str, step_width: int = 8, top_note: str = "") -> CompileJob:
    """A three-file design for the file-granularity invalidation tests."""
    types = (f"type data_t = Stream(Bit({step_width}), d=1);", "types.td")
    stage = ("streamlet pass_s { i: data_t in, o: data_t out, }", "streamlet.td")
    top = (f"impl pass_i of pass_s {{ i => o, }}\ntop pass_i;\n{top_note}", "top.td")
    return CompileJob(name=name, sources=(types, stage, top), include_stdlib=False)


class TestFileGranularity:
    def test_new_design_lists_every_file_as_changed(self):
        inc = IncrementalCompiler()
        report = inc.update([multi_file_job("a")])
        assert sorted(report.changed_files["a"]) == ["streamlet.td", "top.td", "types.td"]
        assert report.unchanged_files["a"] == []

    def test_one_file_edit_is_diffed_at_file_level(self):
        inc = IncrementalCompiler()
        inc.update([multi_file_job("a")])
        report = inc.update([multi_file_job("a", top_note="// edited")])
        assert report.compiled == ["a"]
        assert report.changed_files["a"] == ["top.td"]
        assert sorted(report.unchanged_files["a"]) == ["streamlet.td", "types.td"]
        assert report.file_summary() == "1 file(s) re-parsed, 2 file(s) reused"

    def test_reused_designs_have_no_file_churn(self):
        inc = IncrementalCompiler()
        inc.update([multi_file_job("a")])
        report = inc.update([multi_file_job("a")])
        assert report.reused == ["a"]
        assert report.changed_files == {} and report.unchanged_files == {}

    def test_option_only_change_shows_zero_changed_files(self):
        inc = IncrementalCompiler()
        inc.update([multi_file_job("a")])
        changed_options = multi_file_job("a").with_options(run_drc=False)
        report = inc.update([changed_options])
        assert report.compiled == ["a"]
        assert report.changed_files["a"] == []
        assert len(report.unchanged_files["a"]) == 3

    def test_stage_cache_reuses_unchanged_files_across_update(self):
        """The recompile after a one-file edit re-parses only that file."""
        cache = CompilationCache()
        inc = IncrementalCompiler(cache=cache)
        inc.update([multi_file_job("a")])
        assert cache.stages.stats.parse_misses == 3
        inc.update([multi_file_job("a", top_note="// edited")])
        assert cache.stages.stats.parse_misses == 4  # only top.td re-parsed
        assert cache.stages.stats.parse_hits == 2

    def test_failed_design_drops_file_memory(self):
        inc = IncrementalCompiler()
        inc.update([multi_file_job("a")])
        broken = CompileJob(
            name="a", sources=(("streamlet broken {", "types.td"),), include_stdlib=False
        )
        failed = inc.update([broken])
        assert "a" in failed.failed
        # After the failure the design is fully forgotten: the next good
        # round treats every file as new.
        report = inc.update([multi_file_job("a")])
        assert sorted(report.changed_files["a"]) == ["streamlet.td", "top.td", "types.td"]


class TestBackendTargets:
    def test_new_target_dirties_and_outputs_for(self):
        compiler = IncrementalCompiler(cache=CompilationCache())
        first = compiler.update([job("a", 8)])
        assert first.compiled == ["a"]
        assert compiler.outputs_for("a", "vhdl") is None

        # Requesting a backend changes the job fingerprint: the design is
        # dirty even though no source file changed.
        second = compiler.update([job("a", 8, targets=("vhdl",))])
        assert second.compiled == ["a"]
        assert second.changed_files == {"a": []}
        vhdl = compiler.outputs_for("a", "vhdl")
        assert vhdl and all(name.endswith(".vhd") for name in vhdl)
        assert compiler.outputs_for("a", "dot") is None
        assert compiler.outputs_for("missing", "vhdl") is None

        # Unchanged job (same targets) is reused, outputs still served.
        third = compiler.update([job("a", 8, targets=("vhdl",))])
        assert third.reused == ["a"]
        assert compiler.outputs_for("a", "vhdl") == vhdl


def test_duplicate_job_names_rejected():
    """Same contract as the batch driver: a name collision is an error,
    never a silent last-job-wins replace."""
    inc = IncrementalCompiler()
    twin = [job("a", 8), job("a", 16)]
    import pytest as _pytest

    with _pytest.raises(ValueError, match="duplicate"):
        inc.update(twin)
