"""Tests for the simulation harness (:mod:`repro.sim.harness`).

Three layers: :class:`SimulationPlan` normalisation and fingerprinting,
:func:`run_simulation` end to end over a healthy and a deadlocking design,
and the engine's structured budget-exhaustion errors (partial trace
attached, still analysable through :func:`report_from_trace`).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import TydiInputError, TydiSimulationError
from repro.lang.compile import compile_project
from repro.sim import (
    SimulationPlan,
    SimulationReport,
    Simulator,
    Stimulus,
    report_from_trace,
    run_simulation,
)
from repro.sim.harness import KNOWN_ANALYSES, PLAN_FIELD_NAMES

ADD_TEN_PIPELINE = """
type num = Stream(Bit(32), d=1);
streamlet top_s { values: num in, total: num out, }
impl top_i of top_s {
    instance ten(const_int_generator_i<type num, 10>),
    instance add(adder_i<type num, type num>),
    instance acc(sum_i<type num, type num>),
    values => add.lhs,
    ten.output => add.rhs,
    add.output => acc.input,
    acc.output => total,
}
top top_i;
"""

# Drive only one operand of a two-input adder: the design deadlocks.
HALF_ADDER = """
type num = Stream(Bit(8), d=1);
streamlet top_s { a: num in, b: num in, o: num out, }
impl top_i of top_s {
    instance add(adder_i<type num, type num>),
    a => add.lhs,
    b => add.rhs,
    add.output => o,
}
top top_i;
"""


@pytest.fixture(scope="module")
def pipeline_project():
    return compile_project(ADD_TEN_PIPELINE).project


@pytest.fixture(scope="module")
def half_adder_project():
    return compile_project(HALF_ADDER).project


def plan_with_values(values, **kwargs) -> SimulationPlan:
    return SimulationPlan(stimuli={"values": values}, **kwargs)


class TestStimulus:
    def test_coerce_mapping(self):
        stimulus = Stimulus.coerce({"port": "values", "values": [1, 2]})
        assert stimulus.port == "values"
        assert stimulus.values == (1, 2)
        assert stimulus.interval == 1 and stimulus.start_time == 0

    def test_unknown_key_rejected_with_suggestion(self):
        with pytest.raises(TydiInputError, match="unknown stimulus key 'intervall'"):
            Stimulus.coerce({"port": "p", "intervall": 2})

    def test_non_scalar_values_rejected(self):
        with pytest.raises(TydiInputError, match="JSON scalars"):
            Stimulus(port="p", values=(object(),))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"port": ""},
            {"port": "p", "interval": 0},
            {"port": "p", "start_time": -1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(TydiInputError):
            Stimulus(**kwargs)


class TestPlanNormalization:
    def test_stimuli_mapping_form_sorts_by_port(self):
        plan = SimulationPlan(stimuli={"b": [2], "a": [1]})
        assert [s.port for s in plan.stimuli] == ["a", "b"]
        assert all(isinstance(s, Stimulus) for s in plan.stimuli)

    def test_stimuli_pair_and_mapping_entries(self):
        plan = SimulationPlan(
            stimuli=[("b", [2]), {"port": "a", "values": [1], "interval": 3}]
        )
        assert [s.port for s in plan.stimuli] == ["a", "b"]
        assert plan.stimuli[0].interval == 3

    def test_duplicate_stimulus_port_rejected(self):
        with pytest.raises(TydiInputError, match="duplicate stimulus"):
            SimulationPlan(stimuli=[("p", [1]), ("p", [2])])

    def test_bogus_stimuli_entry_rejected(self):
        with pytest.raises(TydiInputError, match=r"stimuli\[0\]"):
            SimulationPlan(stimuli=[42])

    def test_analyses_deduplicate_into_canonical_order(self):
        plan = SimulationPlan(analyses=("deadlock", "bottleneck", "deadlock"))
        assert plan.analyses == KNOWN_ANALYSES

    def test_single_analysis_string_accepted(self):
        assert SimulationPlan(analyses="deadlock").analyses == ("deadlock",)

    def test_unknown_analysis_rejected_with_suggestion(self):
        with pytest.raises(TydiInputError, match="unknown analysis 'bottlenek'"):
            SimulationPlan(analyses=("bottlenek",))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"channel_capacity": 0},
            {"max_events": 0},
            {"max_time": -1},
        ],
    )
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(TydiInputError):
            SimulationPlan(**kwargs)

    def test_from_kwargs_rejects_unknown_key(self):
        with pytest.raises(TydiInputError, match="unknown simulation plan key 'bogus'"):
            SimulationPlan.from_kwargs(bogus=1)

    def test_coerce_forms(self):
        default = SimulationPlan.coerce(None)
        assert default == SimulationPlan()
        instance = SimulationPlan(channel_capacity=4)
        assert SimulationPlan.coerce(instance) is instance
        assert SimulationPlan.coerce({"channel_capacity": 4}) == instance
        with pytest.raises(TydiInputError, match="must be a SimulationPlan"):
            SimulationPlan.coerce(42)

    def test_replace_checks_keys(self):
        plan = SimulationPlan()
        assert plan.replace(channel_capacity=8).channel_capacity == 8
        with pytest.raises(TydiInputError, match="unknown simulation plan key"):
            plan.replace(chanel_capacity=8)

    def test_as_dict_covers_every_field(self):
        assert tuple(SimulationPlan().as_dict()) == PLAN_FIELD_NAMES


class TestFingerprint:
    def test_equal_plans_fingerprint_identically(self):
        a = SimulationPlan(stimuli={"p": [1, 2]}, analyses=("deadlock", "bottleneck"))
        b = SimulationPlan(
            stimuli=[{"port": "p", "values": [1, 2]}],
            analyses=("bottleneck", "deadlock"),
        )
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_any_field_change_moves_the_fingerprint(self):
        base = SimulationPlan()
        variants = [
            base.replace(channel_capacity=3),
            base.replace(max_time=123),
            base.replace(max_events=456),
            base.replace(analyses=("deadlock",)),
            base.replace(testbench=True),
            base.replace(stimuli={"p": [1]}),
        ]
        fingerprints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(fingerprints) == len(variants) + 1

    def test_json_round_trip_preserves_the_fingerprint(self):
        plan = plan_with_values([1, 2, 3], channel_capacity=4)
        wire = json.loads(json.dumps(plan.as_dict()))
        assert SimulationPlan.coerce(wire).fingerprint() == plan.fingerprint()


class TestRunSimulation:
    def test_healthy_run(self, pipeline_project):
        plan = plan_with_values([1, 2, 3])
        report = run_simulation(pipeline_project, plan)
        assert report.verdict == "ok" and not report.deadlocked
        assert report.outputs == {"total": [36]}
        assert report.plan_fingerprint == plan.fingerprint()
        metrics = report.port_metrics["total"]
        assert metrics.packets == 1
        assert set(metrics.latency_dict()) == {"p50", "p90", "p99"}
        assert report.bottleneck is not None and report.deadlock is not None
        assert not report.deadlock.deadlocked

    def test_mapping_plan_accepted(self, pipeline_project):
        report = run_simulation(
            pipeline_project, {"stimuli": {"values": [1, 2, 3]}}
        )
        assert report.outputs == {"total": [36]}

    def test_repeat_runs_serialise_byte_identically(self, pipeline_project):
        plan = plan_with_values([5, 6, 7], channel_capacity=3)
        first = run_simulation(pipeline_project, plan)
        second = run_simulation(pipeline_project, plan)
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_report_pickle_round_trip(self, pipeline_project):
        report = run_simulation(pipeline_project, plan_with_values([1, 2, 3]))
        clone = pickle.loads(pickle.dumps(report))
        assert isinstance(clone, SimulationReport)
        assert clone.as_dict() == report.as_dict()

    def test_analyses_subset_skips_the_other_report(self, pipeline_project):
        report = run_simulation(
            pipeline_project, plan_with_values([1], analyses=("deadlock",))
        )
        assert report.bottleneck is None and report.deadlock is not None
        assert report.as_dict()["bottleneck"] is None

    def test_no_analyses_makes_to_dot_unrenderable(self, pipeline_project):
        report = run_simulation(
            pipeline_project, plan_with_values([1], analyses=())
        )
        assert report.bottleneck is None and report.deadlock is None
        with pytest.raises(TydiSimulationError, match="no analysis to render"):
            report.to_dot(pipeline_project)

    def test_healthy_run_renders_bottleneck_dot(self, pipeline_project):
        report = run_simulation(pipeline_project, plan_with_values([1, 2, 3]))
        assert "digraph" in report.to_dot(pipeline_project)

    def test_deadlock_verdict(self, half_adder_project):
        # A deadlocked design polls its blocked stimulus until max_time;
        # keep the budget small so the test stays fast.
        plan = SimulationPlan(stimuli={"a": [1, 2, 3]}, max_time=2_000)
        report = run_simulation(half_adder_project, plan)
        assert report.verdict == "deadlock" and report.deadlocked
        assert "add" in report.deadlock.waiting_components
        dot = report.to_dot(half_adder_project)
        assert "digraph" in dot
        assert "deadlock" in report.summary()

    def test_testbench_recorded_on_demand(self, pipeline_project):
        report = run_simulation(
            pipeline_project, plan_with_values([1, 2], testbench=True)
        )
        assert report.testbench is not None
        wire = report.as_dict()["testbench"]
        assert wire is not None and wire["drives"] >= 1

    def test_summary_mentions_ports(self, pipeline_project):
        report = run_simulation(pipeline_project, plan_with_values([1, 2, 3]))
        summary = report.summary()
        assert "simulation verdict: ok" in summary
        assert "total:" in summary


class TestBudgets:
    def test_event_budget_exhaustion_is_structured(self, pipeline_project):
        with pytest.raises(TydiSimulationError) as excinfo:
            run_simulation(
                pipeline_project,
                plan_with_values(list(range(50)), max_events=10),
            )
        error = excinfo.value
        assert error.stage == "simulate"
        assert error.trace is not None
        assert error.trace.events_processed > 0

    def test_partial_trace_still_folds_into_a_report(self, pipeline_project):
        plan = plan_with_values(list(range(50)), max_events=10)
        simulator = Simulator(
            pipeline_project, channel_capacity=plan.channel_capacity
        )
        for stimulus in plan.stimuli:
            simulator.drive(stimulus.port, list(stimulus.values))
        with pytest.raises(TydiSimulationError) as excinfo:
            simulator.run(max_time=plan.max_time, max_events=plan.max_events)
        report = report_from_trace(simulator, excinfo.value.trace, plan)
        assert report.plan_fingerprint == plan.fingerprint()
        assert report.events_processed == excinfo.value.trace.events_processed
