"""Round-trip differential suite of the Tydi-IR interchange subsystem.

The correctness spine is ``emit(ingest(emit(P))) == emit(P)`` --
byte-identical documents *and* byte-identical downstream backend outputs
-- proven over fuzzed designs, the TPC-H query suite, the staged
pipeline's memoised ingest tier, a live workspace, and the wire
(``open_ir_design`` against a running ``tydi-serve``, threaded and
pooled).  The ingest error envelope (:class:`~repro.errors.TydiIngestError`,
stage ``"ingest"``, ``file:line:col`` spans) gets the same local-vs-remote
treatment.
"""

from __future__ import annotations

import functools
import random

import pytest

from repro.backends import get_backend
from repro.errors import TydiIngestError
from repro.interchange import (
    FORMAT_VERSION,
    compile_ir_document,
    emit_document,
    load_ir,
    roundtrip_document,
)
from repro.lang.compile import compile_sources
from repro.testing import build_chain_design, build_random_design

#: Fuzzed designs per parametrised round-trip test.
NUM_DESIGNS = 12

#: Backends whose outputs must survive the round trip byte-identically.
ROUNDTRIP_BACKENDS = ("tydi-ir", "vhdl", "verilog", "ir", "dot")

SEEDS = tuple(range(NUM_DESIGNS))


@functools.lru_cache(maxsize=None)
def _fuzzed_project(seed: int):
    sources = (
        build_chain_design(6)
        if seed == 0  # one deterministic shape among the fuzzed ones
        else build_random_design(random.Random(4200 + seed))
    )
    return compile_sources(sources, include_stdlib=False).project


# -- the spine: emit(ingest(emit(P))) == emit(P) -------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_document_round_trips_byte_identical(seed):
    project = _fuzzed_project(seed)
    document = emit_document(project)
    assert roundtrip_document(project) == document


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("backend_name", ROUNDTRIP_BACKENDS)
def test_backend_outputs_survive_round_trip(seed, backend_name):
    project = _fuzzed_project(seed)
    ingested = load_ir(emit_document(project))
    backend = get_backend(backend_name)
    assert list(backend.emit(ingested).items()) == list(backend.emit(project).items())


def test_tpch_queries_round_trip(compiled_queries):
    for name, result in compiled_queries.items():
        document = emit_document(result.project)
        ingested = load_ir(document)
        assert emit_document(ingested) == document, f"{name}: document drifted"
        for backend_name in ("vhdl", "tydi-ir"):
            backend = get_backend(backend_name)
            assert backend.emit(ingested) == backend.emit(result.project), (
                f"{name}: {backend_name} outputs drifted across the round trip"
            )


def test_tydi_ir_backend_is_the_document_emitter():
    """``tydi-ir``'s assembled file is exactly :func:`emit_document` --
    the property that lets a cached emission be re-ingested verbatim."""
    project = _fuzzed_project(0)
    backend = get_backend("tydi-ir")
    assert backend.emit(project) == {f"{project.name}.tir": emit_document(project)}
    units = {
        name: backend.emit_unit(project, impl)
        for name, impl in project.implementations.items()
    }
    assembled = backend.assemble(project, backend.emit_shared(project), units)
    assert assembled == backend.emit(project)


def test_document_prelude_declares_format_version():
    document = emit_document(_fuzzed_project(0))
    assert document.startswith(f"// Tydi-IR interchange, format v{FORMAT_VERSION}\n")


# -- the ingest pipeline and its error envelopes -------------------------------


def test_compile_ir_document_matches_direct_backend_emission():
    project = _fuzzed_project(1)
    document = emit_document(project)
    result = compile_ir_document(document, {"targets": ("vhdl", "verilog")})
    assert result.outputs["vhdl"] == get_backend("vhdl").emit(project)
    assert result.outputs["verilog"] == get_backend("verilog").emit(project)
    assert [stage.name for stage in result.stages][0] == "ingest"


def test_garbage_document_raises_ingest_error_with_span():
    with pytest.raises(TydiIngestError, match=r"broken\.tir:1:1") as excinfo:
        compile_ir_document("definitely not a document", filename="broken.tir")
    assert excinfo.value.stage == "ingest"


def test_missing_top_is_a_referential_ingest_error():
    document = emit_document(_fuzzed_project(2))
    broken = document.replace("top ", "top nope_", 1)
    with pytest.raises(TydiIngestError, match="nope_"):
        load_ir(broken, filename="broken.tir")


def test_future_format_version_is_rejected():
    document = emit_document(_fuzzed_project(0))
    bumped = document.replace(
        f"format v{FORMAT_VERSION}", f"format v{FORMAT_VERSION + 1}", 1
    )
    with pytest.raises(TydiIngestError, match=f"v{FORMAT_VERSION + 1}"):
        load_ir(bumped)


def test_empty_document_is_an_ingest_error():
    with pytest.raises(TydiIngestError):
        load_ir("")


# -- the staged pipeline: memoised ingest tier ---------------------------------


def test_stage_cache_compile_ir_matches_uncached_and_memoises(tmp_path):
    from repro.pipeline import StageCache

    project = _fuzzed_project(3)
    document = emit_document(project)
    options = {"targets": ("vhdl", "tydi-ir")}
    reference = compile_ir_document(document, options)

    cache = StageCache(cache_dir=tmp_path)
    cold = cache.compile_ir(document, options)
    assert cold.outputs == reference.outputs
    stats = cache.stats_snapshot()
    assert stats["ingest_misses"] == 1 and stats["ingest_hits"] == 0

    warm = cache.compile_ir(document, options)
    assert warm.outputs == reference.outputs
    stats = cache.stats_snapshot()
    assert stats["ingest_hits"] == 1
    # The backend-unit tier served the warm emission entirely.
    assert stats["backend_hits"] >= len(project.implementations)

    # A fresh session over the same cache_dir rides the disk tier.
    fresh = StageCache(cache_dir=tmp_path)
    again = fresh.compile_ir(document, options)
    assert again.outputs == reference.outputs
    assert fresh.stats_snapshot()["ingest_hits"] == 1


def test_stage_cache_parallel_emit_matches_serial(tmp_path):
    from repro.pipeline import StageCache

    project = _fuzzed_project(4)
    document = emit_document(project)
    options = {"targets": ("verilog",)}
    serial = StageCache(cache_dir=tmp_path / "serial").compile_ir(document, options)
    parallel_cache = StageCache(cache_dir=tmp_path / "parallel", emit_jobs=4)
    parallel = parallel_cache.compile_ir(document, options)
    assert parallel.outputs == serial.outputs


# -- the workspace frontend ----------------------------------------------------


class TestWorkspaceIrDesigns:
    def _workspace(self, tmp_path):
        from repro.pipeline import CompilationCache
        from repro.workspace import Workspace

        return Workspace(cache=CompilationCache(cache_dir=tmp_path))

    def test_outputs_match_direct_emission(self, tmp_path):
        project = _fuzzed_project(5)
        document = emit_document(project)
        workspace = self._workspace(tmp_path)
        workspace.add_ir_design("mydesign", document, {"targets": ("vhdl", "tydi-ir")})
        assert workspace.outputs("mydesign", "vhdl") == get_backend("vhdl").emit(project)
        # The emitted document round-trips through the workspace verbatim.
        assert workspace.outputs("mydesign", "tydi-ir") == {
            f"{project.name}.tir": document
        }
        stages = [s.name for s in workspace.result("mydesign").stages]
        assert stages[0] == "ingest" and "parse" not in stages

    def test_kind_salts_the_fingerprint(self, tmp_path):
        """The same bytes under different frontends must not share identity."""
        document = emit_document(_fuzzed_project(5))
        workspace = self._workspace(tmp_path)
        workspace.add_ir_design("as_ir", document)
        workspace.add_design("as_lang", ((document, "as_ir.tir"),))
        # Same single-file content; the kind keeps the fingerprints apart.
        assert workspace.fingerprint("as_ir") != workspace.fingerprint("as_lang")

    def test_compile_all_isolates_broken_documents(self, tmp_path):
        document = emit_document(_fuzzed_project(6))
        workspace = self._workspace(tmp_path)
        workspace.add_ir_design("good", document, {"targets": ("vhdl",)})
        workspace.add_ir_design("bad", "not a document")
        report = workspace.compile_all()
        assert "good" in report.compiled
        assert "bad" in report.failed and "1:1" in report.failed["bad"]
        # The inline IR compiles ride along in the batch view for the CLI.
        by_name = {entry.name: entry for entry in report.batch.results}
        assert by_name["good"].ok and not by_name["bad"].ok
        assert by_name["bad"].error_stage == "ingest"

    def test_update_file_swaps_the_document(self, tmp_path):
        first = emit_document(_fuzzed_project(7))
        second = emit_document(_fuzzed_project(8))
        workspace = self._workspace(tmp_path)
        workspace.add_ir_design("design", first, {"targets": ("tydi-ir",)})
        (emitted_first,) = workspace.outputs("design", "tydi-ir").values()
        assert emitted_first == first
        (filename,) = workspace.files("design")
        workspace.update_file("design", filename, second)
        assert not workspace.is_fresh("design")
        (emitted_second,) = workspace.outputs("design", "tydi-ir").values()
        assert emitted_second == second

    def test_report_exposes_the_design_kind(self, tmp_path):
        workspace = self._workspace(tmp_path)
        workspace.add_ir_design("irdesign", emit_document(_fuzzed_project(5)))
        assert workspace.report()["designs"]["irdesign"]["kind"] == "ir"


# -- over the wire: open_ir_design against a live server -----------------------


@pytest.mark.parametrize("workers", [0, 2], ids=["threads", "pool"])
def test_round_trip_over_the_wire(workers, tmp_path):
    from repro.server import CompileClient, CompileService, ServerThread

    if workers:
        from repro.server.pool import fork_available

        if not fork_available():  # pragma: no cover - non-fork platforms
            pytest.skip("worker pool requires the fork start method")

    project = _fuzzed_project(9)
    document = emit_document(project)
    want_vhdl = get_backend("vhdl").emit(project)

    service = CompileService(workers=workers, cache_dir=str(tmp_path))
    with service:
        with ServerThread(service) as server:
            with CompileClient(*server.address, connect_retry_for=5) as client:
                opened = client.open_ir_design(
                    "wired", document, options={"targets": ("vhdl", "tydi-ir")}
                )
                assert opened["files"] == ["wired.tir"]
                assert client.get_outputs("wired", "vhdl") == want_vhdl
                # The wire-served document is byte-identical to the input:
                # emit(ingest over the wire) == emit(P).
                served = client.get_outputs("wired", "tydi-ir")
                assert served == {f"{project.name}.tir": document}
                client.shutdown()


def test_ingest_error_envelope_over_the_wire():
    from repro.server import CompileClient, CompileService, RemoteCompileError, ServerThread

    with CompileService() as service:
        with ServerThread(service) as server:
            with CompileClient(*server.address, connect_retry_for=5) as client:
                client.open_ir_design("broken", "garbage in")
                with pytest.raises(RemoteCompileError) as excinfo:
                    client.get_ir("broken")
                assert excinfo.value.remote_stage == "ingest"
                assert "broken.tir" in str(excinfo.value)
                # A design that does not compile answers get_diagnostics
                # with the same structured envelope (existing semantics).
                with pytest.raises(RemoteCompileError) as diag_info:
                    client.get_diagnostics("broken")
                assert diag_info.value.remote_stage == "ingest"
                client.shutdown()


def test_pool_replays_ir_designs_after_a_crash():
    import os
    import signal

    from repro.server import CompileClient, CompileService, ServerThread
    from repro.server.pool import fork_available

    if not fork_available():  # pragma: no cover - non-fork platforms
        pytest.skip("worker pool requires the fork start method")

    project = _fuzzed_project(10)
    document = emit_document(project)
    with CompileService(workers=2) as service:
        with ServerThread(service) as server:
            with CompileClient(*server.address, connect_retry_for=5) as client:
                client.open_ir_design("phoenix", document, options={"targets": ("tydi-ir",)})
                before = client.get_outputs("phoenix", "tydi-ir")

                shard = service.pool.shard_of("phoenix")
                os.kill(service.pool.workers[shard].proc.pid, signal.SIGKILL)

                # The respawned worker replays the mirror through
                # open_ir_design; the caller sees identical outputs.
                assert client.get_outputs("phoenix", "tydi-ir") == before
                assert service.pool.total_restarts == 1
                client.shutdown()
