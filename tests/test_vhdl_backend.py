"""Unit tests for the Tydi-IR to VHDL backend."""

import re

import pytest

from repro.errors import TydiBackendError
from repro.ir.model import Project
from repro.lang.compile import compile_project
from repro.vhdl.backend import VhdlBackend, emit_component_declaration, emit_entity, generate_vhdl
from repro.utils.text import count_loc


SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet stage_s { input: byte_t in, output: byte_t out, }
external impl stage_i of stage_s;
streamlet top_s { i: byte_t in, o: byte_t out, }
impl top_i of top_s {
    instance a(stage_i),
    instance b(stage_i),
    i => a.input,
    a.output => b.input,
    b.output => o,
}
top top_i;
"""


@pytest.fixture(scope="module")
def pipeline_files():
    result = compile_project(SOURCE, include_stdlib=False)
    return generate_vhdl(result.project), result.project


class TestEntityEmission:
    def test_entity_has_clock_and_reset(self, pipeline_files):
        files, project = pipeline_files
        entity = emit_entity(project.streamlet("top_s"))
        assert "clk : in std_logic;" in entity
        assert "rst : in std_logic;" in entity

    def test_entity_lists_stream_signals(self, pipeline_files):
        _, project = pipeline_files
        entity = emit_entity(project.streamlet("top_s"))
        assert "i_valid : in std_logic;" in entity
        assert "i_ready : out std_logic;" in entity
        assert "i_data : in std_logic_vector(7 downto 0);" in entity
        assert "o_valid : out std_logic" in entity

    def test_component_declaration_matches_entity(self, pipeline_files):
        _, project = pipeline_files
        component = emit_component_declaration(project.streamlet("stage_s"))
        assert component.strip().startswith("component stage_s is")
        assert "input_data : in std_logic_vector(7 downto 0)" in component


class TestStructuralArchitecture:
    def test_one_file_per_implementation_plus_package(self, pipeline_files):
        files, project = pipeline_files
        assert len(files) == len(project.implementations) + 1
        assert "top_i.vhd" in files
        assert any(name.endswith("_pkg.vhd") for name in files)

    def test_port_maps_reference_nets(self, pipeline_files):
        files, _ = pipeline_files
        top = files["top_i.vhd"]
        assert "a : stage_s" in top
        assert "b : stage_s" in top
        assert re.search(r"input_data => net_\d+_", top)

    def test_self_ports_wired_to_nets(self, pipeline_files):
        files, _ = pipeline_files
        top = files["top_i.vhd"]
        assert re.search(r"net_\d+_i_data <= i_data;", top)
        assert re.search(r"i_ready <= net_\d+_i_ready;", top)

    def test_blackbox_for_unknown_external(self, pipeline_files):
        files, _ = pipeline_files
        stage = files["stage_i.vhd"]
        assert "architecture blackbox of stage_s" in stage

    def test_vhdl_is_comment_headed(self, pipeline_files):
        files, _ = pipeline_files
        assert all(text.startswith("--") for text in files.values())

    def test_total_loc_counts_all_files(self, pipeline_files):
        files, project = pipeline_files
        backend = VhdlBackend(project)
        assert backend.total_loc() == sum(count_loc(t, "vhdl") for t in files.values())


class TestPrimitiveArchitectures:
    def test_sugaring_duplicator_gets_behavioural_rtl(self):
        source = """
        type t = Stream(Bit(8), d=1);
        streamlet src_s { a: t out, }
        external impl src_i of src_s;
        streamlet snk_s { x: t in, }
        external impl snk_i of snk_s;
        streamlet top_s { }
        impl top_i of top_s {
            instance s(src_i), instance k1(snk_i), instance k2(snk_i),
            s.a => k1.x, s.a => k2.x,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        files = generate_vhdl(result.project)
        duplicator_file = next(text for name, text in files.items() if name.startswith("duplicator"))
        assert "architecture behavioural" in duplicator_file
        assert "pending" in duplicator_file

    def test_stdlib_primitives_get_behavioural_rtl(self, compiled_queries):
        files = generate_vhdl(compiled_queries["q6"].project)
        adder_like = [t for n, t in files.items() if n.startswith("multiplier_i")]
        assert adder_like and "architecture behavioural" in adder_like[0]
        filters = [t for n, t in files.items() if n.startswith("filter_i")]
        assert filters and "keep" in filters[0]

    def test_empty_project_rejected(self):
        with pytest.raises(TydiBackendError):
            generate_vhdl(Project(name="empty"))


class TestDeterministicOrdering:
    def test_generate_vhdl_returns_sorted_files(self, pipeline_files):
        files, project = pipeline_files
        assert list(files) == sorted(files)
        assert list(generate_vhdl(project)) == sorted(files)

    def test_ordering_independent_of_insertion_history(self, pipeline_files):
        """Reordering the project's implementation dict must not change the
        emitted artefact set or its order."""
        _, project = pipeline_files
        reference = generate_vhdl(project)
        shuffled_impls = dict(reversed(list(project.implementations.items())))
        original = project.implementations
        project.implementations = shuffled_impls
        try:
            reordered = generate_vhdl(project)
        finally:
            project.implementations = original
        assert list(reordered.items()) == list(reference.items())

    def test_legacy_generate_matches_registry_order(self, pipeline_files):
        _, project = pipeline_files
        assert list(VhdlBackend(project).generate().items()) == list(
            generate_vhdl(project).items()
        )
