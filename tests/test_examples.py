"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, timeout seconds); tpch_queries compiles every design and simulates
#: them, so it gets a generous budget.
EXAMPLES = [
    ("quickstart.py", 120),
    ("parallelize_adder.py", 120),
    ("sql_acceleration.py", 300),
    ("bottleneck_analysis.py", 300),
    ("tpch_queries.py", 900),
]


@pytest.mark.parametrize("script,timeout", EXAMPLES)
def test_example_runs(script, timeout):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, (
        f"{script} failed:\nstdout:\n{completed.stdout[-2000:]}\nstderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
