"""Unit tests for text helpers, most importantly LoC counting (Table IV input)."""

from repro.utils.text import (
    count_loc,
    dedent_block,
    format_table,
    indent_block,
    join_nonempty,
    strip_block_comments,
)


class TestCountLoc:
    def test_blank_lines_excluded(self):
        assert count_loc("a;\n\n\nb;\n") == 2

    def test_tydi_line_comments_excluded(self):
        source = "// header\nconst x = 1;\n  // indented comment\nconst y = 2;\n"
        assert count_loc(source, "tydi") == 2

    def test_tydi_block_comments_excluded(self):
        source = "/* a\nmulti line\ncomment */\nconst x = 1;\n"
        assert count_loc(source, "tydi") == 1

    def test_vhdl_comments_excluded(self):
        source = "-- comment\nentity x is\nend entity;\n"
        assert count_loc(source, "vhdl") == 2

    def test_sql_comments_excluded(self):
        assert count_loc("-- note\nselect 1;\n", "sql") == 1

    def test_python_comments_excluded(self):
        assert count_loc("# comment\nx = 1\n", "python") == 1

    def test_code_with_trailing_comment_counts(self):
        assert count_loc("const x = 1; // trailing\n", "tydi") == 1

    def test_empty_source(self):
        assert count_loc("") == 0

    def test_unterminated_block_comment(self):
        assert count_loc("const a = 1;\n/* unterminated\nmore", "tydi") == 1


class TestStripBlockComments:
    def test_preserves_line_count(self):
        text = "a /* x\ny */ b"
        stripped = strip_block_comments(text)
        assert stripped.count("\n") == text.count("\n")

    def test_non_tydi_untouched(self):
        assert strip_block_comments("/* keep */", "vhdl") == "/* keep */"


class TestIndentDedent:
    def test_indent_skips_blank_lines(self):
        assert indent_block("a\n\nb", 2) == "  a\n\n  b"

    def test_dedent_common_prefix(self):
        assert dedent_block("    a\n      b") == "a\n  b"

    def test_dedent_all_blank(self):
        assert dedent_block("\n\n") == "\n\n"

    def test_join_nonempty(self):
        assert join_nonempty(["a", "", "b"]) == "a\nb"


class TestFormatTable:
    def test_header_and_rows_aligned(self):
        table = format_table(["name", "value"], [["x", "1"], ["longer", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_short_rows_padded(self):
        table = format_table(["a", "b"], [["only"]])
        assert "only" in table
