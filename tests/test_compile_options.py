"""Tests for :class:`repro.lang.compile.CompileOptions`, the strict
``normalize_sources`` input validation, and backend-option building
(``--backend-opt`` parsing, type coercion, did-you-mean errors)."""

from __future__ import annotations

import pickle

import pytest

from repro.backends import (
    DotBackend,
    DotBackendOptions,
    options_for_backend,
    parse_backend_opt_specs,
)
from repro.errors import TydiBackendError, TydiInputError
from repro.lang.compile import (
    CompileOptions,
    compile_sources,
    normalize_sources,
)
from repro.pipeline import CompileJob, fingerprint_sources

SOURCE = "type t = Stream(Bit(8), d=1);"


class TestNormalizeSourcesValidation:
    def test_accepts_pairs_lists_bare_strings_and_mappings(self):
        assert normalize_sources([(SOURCE, "a.td")]) == ((SOURCE, "a.td"),)
        assert normalize_sources([[SOURCE, "a.td"]]) == ((SOURCE, "a.td"),)
        assert normalize_sources([SOURCE]) == ((SOURCE, "source_0.td"),)
        assert normalize_sources({"a.td": SOURCE}) == ((SOURCE, "a.td"),)

    def test_wrong_arity_tuple_names_the_index(self):
        with pytest.raises(TydiInputError, match=r"sources\[1\].*3-element"):
            normalize_sources([(SOURCE, "a.td"), (SOURCE, "b.td", "extra")])

    def test_non_string_entries_name_the_index_and_types(self):
        with pytest.raises(TydiInputError, match=r"sources\[0\].*int"):
            normalize_sources([(42, "a.td")])
        with pytest.raises(TydiInputError, match=r"sources\[0\].*PosixPath|sources\[0\].*str"):
            import pathlib

            normalize_sources([(SOURCE, pathlib.Path("a.td"))])
        with pytest.raises(TydiInputError, match=r"sources\[2\]"):
            normalize_sources([SOURCE, (SOURCE, "b.td"), None])

    def test_single_string_argument_rejected(self):
        with pytest.raises(TydiInputError, match="single string"):
            normalize_sources(SOURCE)

    def test_duplicate_filenames_rejected_with_both_indices(self):
        with pytest.raises(TydiInputError, match=r"sources\[1\].*duplicate.*sources\[0\]"):
            normalize_sources([(SOURCE, "a.td"), ("other", "a.td")])

    def test_compile_sources_surfaces_the_input_error(self):
        with pytest.raises(TydiInputError, match=r"sources\[0\]"):
            compile_sources([(SOURCE,)])


class TestCompileOptions:
    def test_normalisation_on_construction(self):
        options = CompileOptions(top_args=[1, 2], targets=["vhdl", "vhdl", "dot"])
        assert options.top_args == (1, 2)
        assert options.targets == ("vhdl", "dot")

    def test_as_dict_round_trips_through_from_kwargs(self):
        options = CompileOptions(top="x", sugaring=False, targets=("ir",))
        assert CompileOptions.from_kwargs(**options.as_dict()) == options

    def test_unknown_kwarg_gets_did_you_mean(self):
        with pytest.raises(TydiInputError, match="did you mean 'sugaring'"):
            CompileOptions.from_kwargs(sugarring=False)
        with pytest.raises(TydiInputError, match="unknown compile option"):
            CompileOptions.from_kwargs(definitely_not_an_option=1)

    def test_coerce_forms(self):
        assert CompileOptions.coerce(None) == CompileOptions()
        assert CompileOptions.coerce({"top": "x"}) == CompileOptions(top="x")
        options = CompileOptions(sugaring=False)
        assert CompileOptions.coerce(options) is options
        with pytest.raises(TydiInputError):
            CompileOptions.coerce(42)

    def test_replace_validates(self):
        options = CompileOptions()
        assert options.replace(run_drc=False).run_drc is False
        with pytest.raises(TydiInputError, match="did you mean"):
            options.replace(run_drcc=False)

    def test_fingerprint_matches_job_and_cache_paths(self):
        sources = ((SOURCE, "a.td"),)
        options = CompileOptions(project_name="demo", targets=("ir",))
        job = CompileJob(
            name="demo", sources=sources, project_name="demo", targets=("ir",)
        )
        assert options.fingerprint(sources) == job.fingerprint()
        assert options.fingerprint(sources) == fingerprint_sources(sources, options)
        assert options.fingerprint(sources) == fingerprint_sources(
            sources, options.as_dict()
        )

    def test_backend_options_participate_in_fingerprint(self):
        sources = ((SOURCE, "a.td"),)
        plain = CompileOptions(targets=("dot",))
        tweaked = CompileOptions(
            targets=("dot",), backend_options={"dot": {"rankdir": "TB"}}
        )
        assert plain.fingerprint(sources) != tweaked.fingerprint(sources)
        # ... and the normal form is order-independent and deduplicated.
        also = CompileOptions(
            targets=("dot",), backend_options=[("dot", {"rankdir": "TB"})]
        )
        assert also.fingerprint(sources) == tweaked.fingerprint(sources)

    def test_options_mixed_with_keywords_rejected(self):
        with pytest.raises(TydiInputError, match="not both"):
            compile_sources([SOURCE], options=CompileOptions(), sugaring=False)

    def test_options_object_drives_compile(self):
        result = compile_sources(
            [(SOURCE + "\nstreamlet s { i: t in, o: t out, }\nimpl im of s { i => o, }\ntop im;", "a.td")],
            options=CompileOptions(project_name="named", include_stdlib=False),
        )
        assert result.project.name == "named"

    def test_picklable(self):
        options = CompileOptions(
            targets=("dot",), backend_options={"dot": {"rankdir": "TB"}}
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options
        assert clone.backend_options_for("dot").rankdir == "TB"

    def test_backend_options_for(self):
        options = CompileOptions(backend_options={"dot": {"rankdir": "TB"}})
        assert options.backend_options_for("dot").rankdir == "TB"
        assert options.backend_options_for("vhdl") is None


class TestBackendOptionBuilding:
    def test_unknown_backend_name_rejected_up_front(self):
        with pytest.raises(TydiBackendError, match="unknown backend 'systemc'"):
            CompileOptions(backend_options={"systemc": {"x": "1"}})

    def test_unknown_key_gets_did_you_mean(self):
        with pytest.raises(TydiBackendError, match="did you mean 'rankdir'"):
            options_for_backend(DotBackend, {"rankdirr": "TB"})

    def test_unknown_key_lists_valid_options(self):
        with pytest.raises(TydiBackendError, match="highlight, rankdir, show_types"):
            options_for_backend(DotBackend, {"nope": "1"})

    def test_string_coercion_bool_and_tuple(self):
        options = options_for_backend(
            DotBackend, {"show_types": "false", "highlight": "a,b"}
        )
        assert options.show_types is False
        assert options.highlight == ("a", "b")
        assert options_for_backend(DotBackend, {"highlight": ""}).highlight == ()

    def test_bad_bool_value_rejected(self):
        with pytest.raises(TydiBackendError, match="expected a boolean"):
            options_for_backend(DotBackend, {"show_types": "maybe"})

    def test_typed_values_pass_through(self):
        options = options_for_backend(DotBackend, {"show_types": False})
        assert options.show_types is False

    def test_existing_instance_accepted(self):
        instance = DotBackendOptions(rankdir="TB")
        options = CompileOptions(backend_options=[("dot", instance)])
        assert options.backend_options_for("dot") is instance

    def test_wrong_instance_type_rejected(self):
        with pytest.raises(TydiInputError, match="expects DotBackendOptions"):
            CompileOptions(backend_options=[("dot", object())])


class TestBackendOptSpecParsing:
    def test_parse_specs(self):
        parsed = parse_backend_opt_specs(
            ["dot.rankdir=TB", "dot.show_types=false", "vhdl.x=a=b"]
        )
        assert parsed == {
            "dot": {"rankdir": "TB", "show_types": "false"},
            "vhdl": {"x": "a=b"},
        }

    def test_last_value_wins(self):
        parsed = parse_backend_opt_specs(["dot.rankdir=TB", "dot.rankdir=LR"])
        assert parsed == {"dot": {"rankdir": "LR"}}

    @pytest.mark.parametrize(
        "spec", ["rankdir=TB", "dot.rankdir", "dot.=TB", ".rankdir=TB", ""]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(TydiBackendError, match="name.key=value"):
            parse_backend_opt_specs([spec])


class TestOptionsKeywordConflict:
    def test_equal_but_not_identical_defaults_are_not_conflicts(self):
        # [] is the default top_args after normalisation; () after dedup etc.
        result = compile_sources(
            [SOURCE], options=CompileOptions(include_stdlib=False), top_args=[], targets=()
        )
        assert result.project is not None

    def test_conflict_error_names_the_fields(self):
        with pytest.raises(TydiInputError, match="sugaring"):
            compile_sources([SOURCE], options=CompileOptions(), sugaring=False)
