"""Unit tests for the expression evaluator (the Tydi-lang math system)."""

import pytest

from repro.errors import TydiEvaluationError, TydiNameError, TydiTypeError
from repro.lang.expr import evaluate_expr
from repro.lang.parser import parse_source
from repro.lang.values import ClockDomainValue, Scope


def evaluate(expression, **bindings):
    scope = Scope(name="test")
    for name, value in bindings.items():
        scope.define(name, value)
    expr = parse_source(f"const v = {expression};").declarations[0].value
    return evaluate_expr(expr, scope)


class TestArithmetic:
    def test_integer_arithmetic_stays_integer(self):
        assert evaluate("2 + 3 * 4") == 14
        assert isinstance(evaluate("2 + 3"), int)

    def test_division_produces_float_when_needed(self):
        assert evaluate("7 / 2") == 3.5
        assert evaluate("8 / 2") == 4
        assert isinstance(evaluate("8 / 2"), int)

    def test_modulo(self):
        assert evaluate("17 % 5") == 2

    def test_power(self):
        assert evaluate("2 ^ 10") == 1024

    def test_paper_decimal_width(self):
        # Bit(ceil(log2(10^15 - 1))) from Section IV-A == 50 bits.
        assert evaluate("ceil(log2(10 ^ 15 - 1))") == 50

    def test_paper_decimal_width_with_variable(self):
        assert evaluate("ceil(log2(10 ^ decimal_width_memory - 1))", decimal_width_memory=15) == 50

    def test_unary_minus(self):
        assert evaluate("-3 + 10") == 7

    def test_division_by_zero(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("1 / 0")

    def test_modulo_by_zero(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("1 % 0")

    def test_string_concatenation(self):
        assert evaluate('"MED " + "BAG"') == "MED BAG"

    def test_string_plus_number_rejected(self):
        with pytest.raises(TydiTypeError):
            evaluate('"a" + 1')

    def test_array_concatenation(self):
        assert evaluate("[1, 2] + [3]") == [1, 2, 3]


class TestComparisonsAndBooleans:
    def test_comparisons(self):
        assert evaluate("3 < 5") is True
        assert evaluate("3 >= 5") is False
        assert evaluate("2 == 2.0") is True
        assert evaluate("2 != 3") is True

    def test_string_comparison(self):
        assert evaluate('"abc" < "abd"') is True

    def test_boolean_logic(self):
        assert evaluate("true && false") is False
        assert evaluate("true || false") is True
        assert evaluate("!false") is True

    def test_short_circuit_avoids_error(self):
        # The right operand would divide by zero; && must not evaluate it.
        assert evaluate("false && (1 / 0 == 1)") is False
        assert evaluate("true || (1 / 0 == 1)") is True

    def test_boolean_operator_requires_bool(self):
        with pytest.raises(TydiTypeError):
            evaluate("1 && true")

    def test_bool_not_equal_to_int(self):
        assert evaluate("true == 1") is False


class TestBuiltins:
    def test_rounding(self):
        assert evaluate("ceil(2.1)") == 3
        assert evaluate("floor(2.9)") == 2
        assert evaluate("round(2.5)") == 2  # banker's rounding, like Python

    def test_log_and_sqrt(self):
        assert evaluate("log2(8)") == 3
        assert evaluate("log10(1000)") == 3
        assert evaluate("sqrt(16)") == 4

    def test_log_of_non_positive(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("log2(0)")

    def test_min_max(self):
        assert evaluate("min(3, 1, 2)") == 1
        assert evaluate("max([3, 1, 2])") == 3

    def test_abs_and_pow(self):
        assert evaluate("abs(-4)") == 4
        assert evaluate("pow(2, 8)") == 256

    def test_len(self):
        assert evaluate("len([1, 2, 3])") == 3
        assert evaluate('len("abc")') == 3

    def test_len_of_number_rejected(self):
        with pytest.raises(TydiTypeError):
            evaluate("len(3)")

    def test_range(self):
        assert evaluate("range(4)") == [0, 1, 2, 3]
        assert evaluate("range(2, 5)") == [2, 3, 4]
        assert evaluate("range(0, 6, 2)") == [0, 2, 4]

    def test_range_zero_step(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("range(0, 4, 0)")

    def test_clockdomain(self):
        value = evaluate('clockdomain("fast")')
        assert value == ClockDomainValue("fast")

    def test_concat(self):
        assert evaluate('concat("a", 1, "b")') == "a1b"

    def test_unknown_function(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("mystery(1)")

    def test_wrong_arity(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("ceil(1, 2)")


class TestArraysAndRanges:
    def test_array_literal(self):
        assert evaluate('["MED BAG", "MED BOX"]') == ["MED BAG", "MED BOX"]

    def test_indexing(self):
        assert evaluate("[10, 20, 30][1]") == 20

    def test_nested_indexing(self):
        assert evaluate("[[1, 2], [3, 4]][1][0]") == 3

    def test_index_out_of_bounds(self):
        with pytest.raises(TydiEvaluationError):
            evaluate("[1, 2][5]")

    def test_index_non_array(self):
        with pytest.raises(TydiTypeError):
            evaluate("3[0]")

    def test_range_expression(self):
        assert evaluate("0 -> 4") == [0, 1, 2, 3]
        assert evaluate("2 -> 2") == []

    def test_range_with_variables(self):
        assert evaluate("0 -> channel", channel=3) == [0, 1, 2]


class TestIdentifiers:
    def test_lookup(self):
        assert evaluate("x * 2", x=21) == 42

    def test_undefined(self):
        with pytest.raises(TydiNameError):
            evaluate("missing + 1")
