"""Unit tests for in-memory columnar tables."""

import numpy as np
import pytest

from repro.arrow.dataset import Column, Table
from repro.arrow.schema import ArrowSchema
from repro.errors import TydiTypeError


class TestColumn:
    def test_values_coerced_to_numpy(self):
        column = Column("x", [1, 2, 3])
        assert isinstance(column.values, np.ndarray)
        assert len(column) == 3
        assert column.to_list() == [1, 2, 3]


class TestTable:
    def make(self):
        return Table("t", {"a": [1, 2, 3], "b": ["x", "y", "z"]})

    def test_shape(self):
        table = self.make()
        assert table.num_rows == 3
        assert table.num_columns == 2
        assert table.column_names() == ["a", "b"]

    def test_column_access(self):
        table = self.make()
        assert table["a"].tolist() == [1, 2, 3]
        assert "b" in table
        with pytest.raises(KeyError):
            table.column("missing")

    def test_mismatched_length_rejected(self):
        table = self.make()
        with pytest.raises(TydiTypeError):
            table.add_column("c", [1])

    def test_select_and_filter(self):
        table = self.make()
        assert table.select(["b"]).column_names() == ["b"]
        filtered = table.filter(np.array([True, False, True]))
        assert filtered.num_rows == 2
        assert filtered["a"].tolist() == [1, 3]

    def test_head(self):
        assert self.make().head(2).num_rows == 2

    def test_rows_view(self):
        rows = self.make().rows()
        assert rows[0] == {"a": 1, "b": "x"}
        assert len(rows) == 3

    def test_from_schema_validates_columns(self):
        schema = ArrowSchema.of("t", a="int64", b="utf8")
        table = Table.from_schema(schema, {"a": [1], "b": ["s"]})
        assert table.num_rows == 1
        with pytest.raises(TydiTypeError):
            Table.from_schema(schema, {"a": [1]})

    def test_empty_table(self):
        assert Table("empty").num_rows == 0
