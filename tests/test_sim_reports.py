"""Edge cases of the simulation analysis reports and their cacheability.

Two halves: DOT rendering of :class:`BottleneckReport`/:class:`DeadlockReport`
over degenerate inputs (no congestion, self-loop wait edges, several disjoint
wait cycles), and :class:`~repro.sim.harness.SimulationReport` pickle
round-trips through the ``sim:`` stage-cache tiers (memory, disk, remote L2).
"""

from __future__ import annotations

import json

import pytest

from repro.lang.compile import compile_project
from repro.pipeline.stages import StageCache
from repro.sim import SimulationPlan, SimulationReport, run_simulation
from repro.sim.bottleneck import BottleneckReport, ChannelBottleneck
from repro.sim.deadlock import DeadlockReport, StalledChannel
from repro.workspace import Workspace

ADD_TEN_PIPELINE = """
type num = Stream(Bit(32), d=1);
streamlet top_s { values: num in, total: num out, }
impl top_i of top_s {
    instance ten(const_int_generator_i<type num, 10>),
    instance add(adder_i<type num, type num>),
    instance acc(sum_i<type num, type num>),
    values => add.lhs,
    ten.output => add.rhs,
    add.output => acc.input,
    acc.output => total,
}
top top_i;
"""


@pytest.fixture(scope="module")
def pipeline_project():
    return compile_project(ADD_TEN_PIPELINE).project


def assert_valid_dot(dot: str) -> None:
    assert dot.lstrip().startswith("digraph")
    assert dot.count("digraph") == 1
    assert dot.count("{") == dot.count("}")


class TestBottleneckDotEdgeCases:
    def test_empty_report_renders_without_highlights(self, pipeline_project):
        report = BottleneckReport()
        dot = report.to_dot(pipeline_project)
        assert_valid_dot(dot)
        assert report.bottleneck_component() is None
        assert "no congestion recorded" in report.summary()

    def test_zero_score_entries_highlight_nothing(self, pipeline_project):
        # Entries exist but nothing ever waited: scores are all zero, so
        # the DOT must not paint a false culprit.
        report = BottleneckReport(
            entries=[
                ChannelBottleneck("c", "top.values", "add.lhs", 3, 0.0, 0, 0)
            ],
            total_time=9,
        )
        assert report.bottleneck_component() is None
        assert_valid_dot(report.to_dot(pipeline_project))

    def test_worst_is_stable_under_count_overshoot(self):
        entries = [
            ChannelBottleneck("a", "x.o", "y.i", 1, 2.0, 1, 4),
            ChannelBottleneck("b", "y.o", "z.i", 1, 1.0, 0, 0),
        ]
        report = BottleneckReport(entries=entries, total_time=10)
        assert [e.channel for e in report.worst(99)] == ["a", "b"]


class TestDeadlockDotEdgeCases:
    def test_empty_report_has_no_wait_cluster(self, pipeline_project):
        report = DeadlockReport()
        assert not report.deadlocked
        dot = report.to_dot(pipeline_project)
        assert_valid_dot(dot)
        assert "cluster_wait_for" not in dot

    def test_self_loop_wait_edge(self, pipeline_project):
        # A component waiting on itself (a feedback loop through a full
        # channel) is a one-node cycle: the node and the self-edge must
        # both carry the cycle colour.
        report = DeadlockReport(
            stalled=[StalledChannel("loop", "a.o", "a.i", 2, 1)],
            waiting_components=["a"],
            wait_cycles=[["a", "a"]],
            wait_edges=[("a", "a")],
        )
        dot = report.to_dot(pipeline_project)
        assert_valid_dot(dot)
        assert "cluster_wait_for" in dot
        assert '"waitfor.a" -> "waitfor.a"' in dot
        assert "penwidth=2" in dot
        assert "fillcolor" in dot

    def test_multiple_disjoint_wait_cycles(self, pipeline_project):
        report = DeadlockReport(
            stalled=[StalledChannel("c1", "a.o", "b.i", 1, 0)],
            waiting_components=["a", "b", "c", "d", "e"],
            wait_cycles=[["a", "b", "a"], ["c", "d", "c"]],
            wait_edges=[("a", "b"), ("b", "a"), ("c", "d"), ("d", "c"), ("e", "a")],
        )
        dot = report.to_dot(pipeline_project)
        assert_valid_dot(dot)
        for waiter, waited_on in report.wait_edges:
            assert f'"waitfor.{waiter}" -> "waitfor.{waited_on}"' in dot
        # Both cycles paint their edges; the off-cycle edge e->a stays plain.
        assert dot.count("penwidth=2") == 4
        assert '"waitfor.e" -> "waitfor.a";' in dot
        assert "wait cycle: a -> b -> a" in report.summary()

    def test_wait_cluster_splices_inside_the_digraph(self, pipeline_project):
        report = DeadlockReport(
            waiting_components=["a"], wait_edges=[("a", "b")]
        )
        dot = report.to_dot(pipeline_project)
        assert_valid_dot(dot)
        # The cluster must land before the document's closing brace.
        assert dot.rstrip().endswith("}")
        assert dot.index("cluster_wait_for") < dot.rindex("}")


class TestSimReportCacheTiers:
    SOURCES = [(ADD_TEN_PIPELINE, "pipe.td")]
    PLAN = SimulationPlan(stimuli={"values": [1, 2, 3]})

    def _compute(self, project):
        return lambda: run_simulation(project, self.PLAN)

    def test_memory_tier_serves_without_recompute(self, pipeline_project):
        cache = StageCache()
        key = cache.sim_key(self.SOURCES, None, self.PLAN)
        first = cache.cached_simulation(key, self._compute(pipeline_project))

        def explode():
            raise AssertionError("memory hit must not recompute")

        assert cache.cached_simulation(key, explode) is first
        assert cache.stats.sim_hits == 1 and cache.stats.sim_misses == 1

    def test_disk_tier_round_trip(self, pipeline_project, tmp_path):
        warm = StageCache(cache_dir=tmp_path)
        key = warm.sim_key(self.SOURCES, None, self.PLAN)
        report = warm.cached_simulation(key, self._compute(pipeline_project))

        cold = StageCache(cache_dir=tmp_path)
        served = cold.cached_simulation(
            key, lambda: pytest.fail("disk hit must not recompute")
        )
        assert isinstance(served, SimulationReport)
        assert served is not report
        assert json.dumps(served.as_dict(), sort_keys=True) == json.dumps(
            report.as_dict(), sort_keys=True
        )
        assert cold.stats.sim_hits == 1 and cold.stats.disk_hits == 1

    def test_remote_tier_round_trip(self, pipeline_project):
        cachesvc = pytest.importorskip("repro.server.cachesvc")
        from repro.pipeline import RemoteCacheClient

        with cachesvc.CacheServerThread() as server:
            warm = StageCache(remote=RemoteCacheClient.from_url(server.endpoint))
            key = warm.sim_key(self.SOURCES, None, self.PLAN)
            report = warm.cached_simulation(key, self._compute(pipeline_project))
            assert warm.remote.flush()
            warm.remote.close()

            cold = StageCache(remote=RemoteCacheClient.from_url(server.endpoint))
            served = cold.cached_simulation(
                key, lambda: pytest.fail("remote hit must not recompute")
            )
            cold.remote.close()
        assert isinstance(served, SimulationReport)
        assert served.as_dict() == report.as_dict()
        assert cold.stats.sim_misses == 0

    def test_plan_changes_miss(self, pipeline_project, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        key = cache.sim_key(self.SOURCES, None, self.PLAN)
        other = cache.sim_key(
            self.SOURCES, None, self.PLAN.replace(channel_capacity=7)
        )
        assert key != other

    def test_downstream_options_keep_reports_warm(self):
        # sugaring/targets cannot change what the simulator elaborates, so
        # they must not participate in the sim key.
        cache = StageCache()
        assert cache.sim_key(
            self.SOURCES, {"sugaring": True}, self.PLAN
        ) == cache.sim_key(self.SOURCES, {"sugaring": False}, self.PLAN)

    def test_workspace_disk_tier_survives_sessions(self, tmp_path):
        first = Workspace(cache_dir=tmp_path)
        first.add_design("pipe", {"pipe.td": ADD_TEN_PIPELINE})
        report = first.simulate("pipe", self.PLAN)
        assert report.outputs == {"total": [36]}
        assert first.cache.stages.stats.sim_misses == 1

        second = Workspace(cache_dir=tmp_path)
        second.add_design("pipe", {"pipe.td": ADD_TEN_PIPELINE})
        served = second.simulate("pipe", self.PLAN)
        assert second.cache.stages.stats.sim_hits == 1
        assert second.cache.stages.stats.sim_misses == 0
        assert json.dumps(served.as_dict(), sort_keys=True) == json.dumps(
            report.as_dict(), sort_keys=True
        )
