"""Unit tests for identifier sanitisation and template-name mangling."""

from repro.spec.logical_types import Bit, Group, Stream
from repro.utils.names import mangle, render_argument, sanitize_identifier, unique_namer


class TestSanitizeIdentifier:
    def test_plain_name_unchanged(self):
        assert sanitize_identifier("adder_32") == "adder_32"

    def test_special_characters_become_underscores(self):
        assert sanitize_identifier("Stream(Bit(8))") == "Stream_Bit_8"

    def test_leading_digit_prefixed(self):
        assert sanitize_identifier("8bit").startswith("_")

    def test_vhdl_keyword_suffixed(self):
        assert sanitize_identifier("signal") == "signal_i"
        assert sanitize_identifier("entity") == "entity_i"

    def test_empty_becomes_anon(self):
        assert sanitize_identifier("!!!") == "anon"

    def test_consecutive_underscores_collapsed(self):
        assert "__" not in sanitize_identifier("a!!b")


class TestRenderArgument:
    def test_bool(self):
        assert render_argument(True) == "true"
        assert render_argument(False) == "false"

    def test_int(self):
        assert render_argument(42) == "42"
        assert render_argument(-3) == "m3"

    def test_float(self):
        assert render_argument(0.5) == "0p5"

    def test_string_lowercased(self):
        assert render_argument("MED BAG") == "med_bag"

    def test_logical_type_uses_mangle_hook(self):
        stream = Stream.new(Bit(8), dimension=1)
        assert render_argument(stream) == "stream_bit_8_d1"


class TestMangle:
    def test_no_arguments(self):
        assert mangle("duplicator") == "duplicator"

    def test_arguments_are_position_tagged(self):
        name = mangle("dup", (8, 2))
        assert "0_8" in name and "1_2" in name

    def test_distinct_arguments_distinct_names(self):
        assert mangle("adder", (Bit(8),)) != mangle("adder", (Bit(16),))

    def test_same_arguments_same_name(self):
        group = Group.of("G", a=Bit(4))
        assert mangle("x", (group, 3)) == mangle("x", (group, 3))

    def test_mangled_name_is_sanitized(self):
        name = mangle("dup", (Stream.new(Bit(8)),))
        assert "__" not in name
        assert "(" not in name


class TestUniqueNamer:
    def test_names_are_unique(self):
        namer = unique_namer()
        names = {namer("x") for _ in range(10)}
        assert len(names) == 10

    def test_hint_used_as_base(self):
        namer = unique_namer()
        assert namer("dup_port").startswith("dup_port")

    def test_fallback_prefix(self):
        namer = unique_namer("sugar")
        assert namer(None).startswith("sugar")
