"""Unit tests for the design rule check."""

import pytest

from repro.errors import TydiDRCError
from repro.lang.compile import compile_project


def compile_raw(source, **kwargs):
    kwargs.setdefault("include_stdlib", False)
    kwargs.setdefault("sugaring", False)
    kwargs.setdefault("strict_drc", False)
    return compile_project(source, **kwargs)


HEADER = """
type byte_t = Stream(Bit(8), d=1);
type word_t = Stream(Bit(16), d=1);
"""


class TestTypeEquality:
    def test_identical_named_types_pass(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        assert compile_raw(source).drc.passed()

    def test_mismatched_types_fail(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: word_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert not report.passed()
        assert any(v.rule == "type-equality" for v in report.errors)

    def test_structurally_equal_but_distinct_named_types_fail(self):
        # The type-equality problem: same widths, different declarations.
        source = """
        Group Metres { value: Bit(32), }
        Group Feet { value: Bit(32), }
        type metres_t = Stream(Metres, d=1);
        type feet_t = Stream(Feet, d=1);
        streamlet s { i: metres_t in, o: feet_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert not report.passed()

    def test_structural_attribute_relaxes_check(self):
        source = """
        Group Metres { value: Bit(32), }
        Group Feet { value: Bit(32), }
        type metres_t = Stream(Metres, d=1);
        type feet_t = Stream(Feet, d=1);
        streamlet s { i: metres_t in, o: feet_t out, }
        impl impl_i of s { i => o @structural, }
        top impl_i;
        """
        assert compile_raw(source).drc.passed()

    def test_error_message_names_the_types(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: word_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        message = str(report.errors[0])
        assert "Bit(8)" in message and "Bit(16)" in message


class TestPortUsage:
    def test_unused_sink_detected(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, o2: byte_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any("o2" in v.message and "never driven" in v.message for v in report.errors)

    def test_unused_source_detected(self):
        source = HEADER + """
        streamlet s { i: byte_t in, i2: byte_t in, o: byte_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any("i2" in v.message for v in report.errors)

    def test_doubly_driven_sink_detected(self):
        source = HEADER + """
        streamlet s { i: byte_t in, i2: byte_t in, o: byte_t out, }
        impl impl_i of s { i => o, i2 => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any("driven 2 times" in v.message for v in report.errors)

    def test_fanout_without_sugaring_detected(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, o2: byte_t out, }
        impl impl_i of s { i => o, i => o2, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any("drives 2 sinks" in v.message for v in report.errors)


class TestDirectionLegality:
    def test_output_to_output_rejected(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, }
        streamlet inner_s { x: byte_t in, y: byte_t out, }
        external impl inner_i of inner_s;
        impl impl_i of s {
            instance a(inner_i),
            o => a.x,
            i => a.x,
        }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any(v.rule == "direction" for v in report.errors)

    def test_instance_output_to_self_output_ok(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, }
        streamlet inner_s { x: byte_t in, y: byte_t out, }
        external impl inner_i of inner_s;
        impl impl_i of s { instance a(inner_i), i => a.x, a.y => o, }
        top impl_i;
        """
        assert compile_raw(source).drc.passed()


class TestClockDomains:
    def test_cross_clock_connection_rejected(self):
        source = HEADER + """
        streamlet s { i: byte_t in @ clk_a, o: byte_t out @ clk_b, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert any("clock domain" in v.message for v in report.errors)

    def test_same_clock_connection_ok(self):
        source = HEADER + """
        streamlet s { i: byte_t in @ clk_a, o: byte_t out @ clk_a, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        assert compile_raw(source).drc.passed()


class TestNonStreamPorts:
    def test_non_stream_port_warned(self):
        source = """
        streamlet s { i: Bit(8) in, o: Bit(8) out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert report.passed()
        assert any(v.rule == "stream-port" for v in report.warnings)


class TestStrictMode:
    def test_strict_drc_raises(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: word_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        with pytest.raises(TydiDRCError):
            compile_project(source, include_stdlib=False, sugaring=False, strict_drc=True)

    def test_report_summary_counts(self):
        source = HEADER + """
        streamlet s { i: byte_t in, o: byte_t out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        report = compile_raw(source).drc
        assert report.connections_checked == 1
        assert report.ports_checked == 2
        assert "0 error" in report.summary()
