"""Property-based tests (hypothesis) on the logical type system."""

from hypothesis import given, settings, strategies as st

from repro.spec.compat import structurally_equal
from repro.spec.logical_types import Bit, Group, LogicalType, Null, Stream, Union
from repro.spec.physical import expand_stream


# -- strategies -----------------------------------------------------------------

field_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


def logical_types(max_depth: int = 2) -> st.SearchStrategy[LogicalType]:
    base = st.one_of(
        st.just(Null()),
        st.integers(min_value=1, max_value=256).map(Bit),
    )
    if max_depth == 0:
        return base

    def build_group(fields):
        return Group(tuple(fields), name=None)

    def build_union(fields):
        return Union(tuple(fields), name=None)

    children = st.lists(
        st.tuples(field_names, logical_types(max_depth - 1)),
        min_size=1,
        max_size=3,
        unique_by=lambda pair: pair[0],
    )
    return st.one_of(base, children.map(build_group), children.map(build_union))


def streams() -> st.SearchStrategy[Stream]:
    return st.builds(
        Stream.new,
        element=logical_types(1),
        dimension=st.integers(min_value=0, max_value=4),
        throughput=st.integers(min_value=1, max_value=8),
        complexity=st.integers(min_value=1, max_value=8),
    )


# -- properties -----------------------------------------------------------------


@given(logical_types())
@settings(max_examples=80)
def test_bit_width_is_non_negative(logical_type):
    assert logical_type.bit_width() >= 0


@given(logical_types())
@settings(max_examples=80)
def test_structural_equality_is_reflexive(logical_type):
    assert structurally_equal(logical_type, logical_type)


@given(logical_types(), logical_types())
@settings(max_examples=80)
def test_structural_equality_is_symmetric(a, b):
    assert structurally_equal(a, b) == structurally_equal(b, a)


@given(st.lists(st.tuples(field_names, logical_types(1)), min_size=1, max_size=4,
                unique_by=lambda pair: pair[0]))
@settings(max_examples=60)
def test_group_width_is_sum_of_fields(fields):
    group = Group(tuple(fields))
    assert group.bit_width() == sum(t.bit_width() for _, t in fields)


@given(st.lists(st.tuples(field_names, logical_types(1)), min_size=1, max_size=4,
                unique_by=lambda pair: pair[0]))
@settings(max_examples=60)
def test_union_width_at_least_max_variant(fields):
    union = Union(tuple(fields))
    assert union.bit_width() >= max(t.bit_width() for _, t in fields)
    assert union.bit_width() <= max(t.bit_width() for _, t in fields) + 2


@given(logical_types())
@settings(max_examples=60)
def test_to_tydi_is_nonempty_and_stable(logical_type):
    rendered = logical_type.to_tydi()
    assert rendered
    assert rendered == logical_type.to_tydi()


@given(streams())
@settings(max_examples=80)
def test_stream_physical_expansion_consistent(stream):
    physical = expand_stream(stream)
    # Handshake always present.
    assert {"valid", "ready"} <= set(physical.signal_names())
    # Data width scales with lanes.
    if stream.data_width() > 0:
        assert physical.signal("data").width == stream.data_width() * stream.throughput.lanes
    # The last signal exists exactly when the stream is dimensional.
    assert ("last" in physical.signal_names()) == (stream.dimension > 0)


@given(streams())
@settings(max_examples=60)
def test_stream_walk_contains_element(stream):
    assert stream.element in list(stream.walk())


@given(logical_types())
@settings(max_examples=60)
def test_walk_first_element_is_self(logical_type):
    assert next(iter(logical_type.walk())) is logical_type
