"""Golden expect-tests: pinned backend outputs and TPC-H simulation shapes.

Two corpora of committed expectations under ``tests/golden/``:

* ``backends/`` -- every registered built-in backend's full ``{filename:
  text}`` emission over a pinned slice of the fuzzed-design corpus.  Any
  byte drift in any emitter fails loudly with a diffable JSON artefact.
* ``sim/`` -- plan-level expectations for the five TPC-H queries: the
  simulation verdict plus per-port packet counts and throughput.

Regenerate intentionally with ``pytest --update-golden`` (the run rewrites
the files and then passes against them); review the diff like any other
code change.
"""

from __future__ import annotations

import functools
import json
import pathlib
import random

import pytest

from repro.backends import available_backends, get_backend
from repro.lang.compile import compile_sources
from repro.testing import build_chain_design, build_random_design

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The pinned corpus slice: stable names -> design builders.  Seeds are
#: frozen; changing them is a golden regeneration, not a code change.
CORPUS = {
    "chain4": lambda: build_chain_design(4),
    "fuzz7100": lambda: build_random_design(random.Random(7100)),
    "fuzz7101": lambda: build_random_design(random.Random(7101)),
}

#: Every built-in backend is pinned; a new registration must add goldens.
BACKENDS = ("dot", "ir", "tydi-ir", "verilog", "vhdl")


@functools.lru_cache(maxsize=None)
def _corpus_project(design: str):
    return compile_sources(CORPUS[design](), include_stdlib=False).project


def _check_or_update(path: pathlib.Path, payload, update: bool):
    """Compare ``payload`` against the pinned JSON at ``path`` (or rewrite it)."""
    text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"missing golden file {path.relative_to(GOLDEN_DIR.parent)}; "
            f"run `pytest --update-golden` and commit the result"
        )
    pinned = json.loads(path.read_text())
    assert payload == pinned, (
        f"{path.name} drifted from the pinned expectation; if the change is "
        f"intentional, regenerate with `pytest --update-golden` and review "
        f"the diff"
    )


def test_every_builtin_backend_is_pinned():
    """A newly registered built-in must join the golden corpus."""
    assert tuple(available_backends()) == tuple(sorted(BACKENDS))


@pytest.mark.parametrize("design", sorted(CORPUS))
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_output_matches_golden(design, backend_name, update_golden):
    project = _corpus_project(design)
    files = get_backend(backend_name).emit(project)
    path = GOLDEN_DIR / "backends" / f"{design}--{backend_name}.json"
    _check_or_update(path, dict(files), update_golden)


def _sim_expectation(report) -> dict:
    """The pinned plan-level shape: verdict + per-port packets/throughput."""
    document = report.as_dict()
    return {
        "verdict": document["verdict"],
        "ports": {
            port: {
                "packets": counters["packets"],
                "throughput": round(counters["throughput"], 6),
            }
            for port, counters in sorted(document["ports"].items())
        },
    }


def _query_names():
    from repro.queries import ALL_QUERIES

    return [query.name for query in ALL_QUERIES]


@pytest.mark.parametrize("query_name", _query_names())
def test_tpch_simulation_matches_golden(query_name, tpch_tables, update_golden):
    from repro.queries import ALL_QUERIES

    (query,) = [q for q in ALL_QUERIES if q.name == query_name]
    report = query.simulate_report(tpch_tables)
    path = GOLDEN_DIR / "sim" / f"{query_name}.json"
    _check_or_update(path, _sim_expectation(report), update_golden)
