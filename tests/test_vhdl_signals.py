"""Unit tests for VHDL signal expansion of Tydi ports."""

from repro.ir.model import Port, PortDirection
from repro.spec.logical_types import Bit, Group, Stream
from repro.vhdl.signals import data_width_of, last_width_of, port_signals, vhdl_identifier, vhdl_type


def stream_port(name="data", direction=PortDirection.IN, **kwargs):
    return Port(name, Stream.new(Group.of("G", a=Bit(8), b=Bit(8)), **kwargs), direction)


class TestVhdlType:
    def test_single_bit(self):
        assert vhdl_type(1) == "std_logic"
        assert vhdl_type(0) == "std_logic"

    def test_vector(self):
        assert vhdl_type(16) == "std_logic_vector(15 downto 0)"


class TestPortSignals:
    def test_input_port_directions(self):
        signals = {s.origin: s for s in port_signals(stream_port(direction=PortDirection.IN))}
        assert signals["valid"].mode == "in"
        assert signals["ready"].mode == "out"
        assert signals["data"].mode == "in"

    def test_output_port_directions(self):
        signals = {s.origin: s for s in port_signals(stream_port(direction=PortDirection.OUT))}
        assert signals["valid"].mode == "out"
        assert signals["ready"].mode == "in"
        assert signals["data"].mode == "out"

    def test_signal_names_prefixed_with_port(self):
        signals = port_signals(stream_port(name="input"))
        assert all(s.name.startswith("input_") for s in signals)

    def test_data_width(self):
        signals = {s.origin: s for s in port_signals(stream_port())}
        assert signals["data"].width == 16

    def test_dimension_adds_last(self):
        signals = {s.origin: s for s in port_signals(stream_port(dimension=2))}
        assert signals["last"].width == 2

    def test_non_stream_port_gets_handshake(self):
        port = Port("raw", Bit(8), PortDirection.IN)
        signals = {s.origin: s for s in port_signals(port)}
        assert set(signals) == {"valid", "ready", "data"}
        assert signals["data"].width == 8

    def test_declaration_rendering(self):
        decl = port_signals(stream_port())[0].declaration()
        assert " : in " in decl or " : out " in decl


class TestWidthHelpers:
    def test_data_width_of(self):
        assert data_width_of(stream_port()) == 16
        assert data_width_of(Port("x", Bit(5), PortDirection.IN)) == 5

    def test_last_width_of(self):
        assert last_width_of(stream_port(dimension=3)) == 3
        assert last_width_of(stream_port()) == 0
        assert last_width_of(Port("x", Bit(5), PortDirection.IN)) == 0

    def test_identifier_sanitized(self):
        assert vhdl_identifier("my port") == "my_port"
