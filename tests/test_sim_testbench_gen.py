"""Unit tests for testbench generation from simulation traces (Section V-C)."""

import pytest

from repro.lang.compile import compile_project
from repro.sim import Simulator
from repro.sim import testbench_from_trace as make_testbench
from repro.vhdl.testbench import generate_vhdl_testbench
from repro.utils.text import count_loc


SOURCE = """
type num = Stream(Bit(16), d=1);
streamlet top_s { values: num in, total: num out, }
impl top_i of top_s {
    instance acc(sum_i<type num, type num>),
    values => acc.input,
    acc.output => total,
}
top top_i;
"""


@pytest.fixture(scope="module")
def simulated():
    result = compile_project(SOURCE)
    simulator = Simulator(result.project)
    simulator.drive("values", [5, 6, 7])
    trace = simulator.run()
    return result.project, simulator, trace


class TestTydiTestbench:
    def test_drive_vectors_replay_inputs(self, simulated):
        _, simulator, trace = simulated
        testbench = make_testbench(simulator, trace)
        drives = {v.port for v in testbench.drive_vectors()}
        assert drives == {"values"}
        assert [e.values[0] for e in testbench.vectors["values"].events] == [5, 6, 7]

    def test_expect_vectors_assert_outputs(self, simulated):
        _, simulator, trace = simulated
        testbench = make_testbench(simulator, trace)
        assert [e.values[0] for e in testbench.vectors["total"].events] == [18]

    def test_emitted_text(self, simulated):
        _, simulator, trace = simulated
        text = make_testbench(simulator, trace).emit()
        assert "drive values [5]" in text
        assert "expect total [18]" in text

    def test_float_and_string_encoding(self, simulated):
        from repro.sim.testbench_gen import _encode_value

        assert _encode_value(1.25) == 125
        assert _encode_value(True) == 1
        assert _encode_value(None) == 0
        assert _encode_value("AB") == (ord("A") << 8) | ord("B")
        assert _encode_value(("a", 2)) != _encode_value(("a", 3))


class TestVhdlTestbench:
    def test_vhdl_testbench_structure(self, simulated):
        project, simulator, trace = simulated
        testbench = make_testbench(simulator, trace)
        text = generate_vhdl_testbench(project, testbench)
        assert "entity top_i_tb is" in text
        assert "dut : entity work.top_s" in text
        assert "drive_values : process" in text
        assert "check_total : process" in text
        assert "assert total_data" in text

    def test_vhdl_testbench_loc_nontrivial(self, simulated):
        project, simulator, trace = simulated
        text = generate_vhdl_testbench(project, make_testbench(simulator, trace))
        assert count_loc(text, "vhdl") > 30

    def test_driving_an_output_port_rejected(self, simulated):
        project, simulator, trace = simulated
        from repro.errors import TydiBackendError
        from repro.ir.testbench import Testbench

        bad = Testbench(implementation=simulator.top_name)
        bad.drive(0, "total", [1])  # "total" is an output port of the design
        with pytest.raises(TydiBackendError):
            generate_vhdl_testbench(project, bad)
