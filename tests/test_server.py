"""Tests of the compile service (:mod:`repro.server`).

Three layers, mirroring the subsystem's structure:

* protocol: envelope parsing/encoding and the structured error objects,
* service: :meth:`CompileService.handle` driven directly (no sockets),
* transport: a live :class:`ServerThread` driven through
  :class:`CompileClient` (NDJSON) and :func:`http_post` (HTTP/1.1).
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import TydiServerError
from repro.lang.compile import compile_sources
from repro.server import (
    CompileClient,
    CompileService,
    PROTOCOL_VERSION,
    RemoteCompileError,
    ServerThread,
    http_post,
)
from repro.server import protocol

GOOD_SOURCE = (
    "type link_t = Stream(Bit(8));\n"
    "streamlet pass_s { i: link_t in, o: link_t out, }\n"
    "external impl pass_i of pass_s;\n"
    "top pass_i;\n"
)

BROKEN_SOURCE = "type ?! = Stream(;\n"


class TestProtocol:
    def test_parse_request_roundtrip(self):
        request_id, method, params = protocol.parse_request(
            {"id": 3, "method": "get_ir", "params": {"design": "d"}}
        )
        assert (request_id, method, params) == (3, "get_ir", {"design": "d"})

    def test_params_default_to_empty(self):
        assert protocol.parse_request({"method": "ping"}) == (None, "ping", {})

    @pytest.mark.parametrize(
        "message",
        [None, 7, [], {"params": {}}, {"method": 3}, {"method": ""}, {"method": "x", "params": 1}],
    )
    def test_malformed_requests_are_server_errors(self, message):
        with pytest.raises(TydiServerError):
            protocol.parse_request(message)

    def test_encode_tydi_error_carries_stage(self):
        from repro.errors import TydiSyntaxError

        error = protocol.encode_error(TydiSyntaxError("bad token"))
        assert error["type"] == "TydiSyntaxError"
        assert error["stage"] == "parse"
        assert error["message"] == "bad token"

    def test_encode_plain_exception_is_internal(self):
        error = protocol.encode_error(RuntimeError("boom"))
        assert error["stage"] == "internal"
        assert error["type"] == "RuntimeError"

    def test_remote_error_preserves_identity(self):
        exc = RemoteCompileError(
            {"type": "TydiDRCError", "stage": "drc", "rendered": "x.td:1:2: bad"}
        )
        assert exc.remote_type == "TydiDRCError"
        assert exc.remote_stage == "drc"
        assert exc.stage == "drc"
        assert "x.td:1:2" in str(exc)


@pytest.fixture
def service():
    service = CompileService(jobs=2)
    yield service
    service.close()


def call(service: CompileService, method: str, **params):
    message = {"id": 1, "method": method}
    if params:
        message["params"] = params
    return service.handle_sync(message)


class TestService:
    def test_ping_reports_protocol_and_methods(self, service):
        envelope = call(service, "ping")
        assert envelope["ok"] and envelope["id"] == 1
        assert envelope["result"]["protocol"] == PROTOCOL_VERSION
        assert "get_ir" in envelope["result"]["methods"]

    def test_open_then_query(self, service):
        opened = call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        assert opened["ok"]
        assert opened["result"]["files"] == ["d.td"]
        ir = call(service, "get_ir", design="d")
        assert ir["ok"]
        reference = compile_sources([(GOOD_SOURCE, "d.td")], cache=None)
        assert ir["result"]["ir"] == reference.ir_text()
        assert ir["result"]["fingerprint"] == opened["result"]["fingerprint"]

    def test_update_file_moves_fingerprint(self, service):
        opened = call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        call(service, "get_ir", design="d")
        updated = call(
            service, "update_file", design="d", filename="d.td",
            text=GOOD_SOURCE.replace("Bit(8)", "Bit(16)"),
        )
        assert updated["ok"]
        assert updated["result"]["fingerprint"] != opened["result"]["fingerprint"]
        assert updated["result"]["fresh"] is False
        assert "Bit(16)" in call(service, "get_ir", design="d")["result"]["ir"]

    def test_identical_update_keeps_design_fresh(self, service):
        call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        call(service, "get_ir", design="d")
        updated = call(service, "update_file", design="d", filename="d.td", text=GOOD_SOURCE)
        assert updated["result"]["fresh"] is True

    def test_compile_failure_is_structured_envelope(self, service):
        call(service, "open_design", design="broken", files={"x.td": BROKEN_SOURCE})
        envelope = call(service, "get_ir", design="broken")
        assert not envelope["ok"]
        assert envelope["error"]["type"] == "TydiSyntaxError"
        assert envelope["error"]["stage"] == "parse"
        assert envelope["id"] == 1

    def test_unknown_design_is_workspace_error(self, service):
        envelope = call(service, "get_ir", design="nope")
        assert not envelope["ok"]
        assert envelope["error"]["type"] == "TydiWorkspaceError"

    def test_unknown_method_suggests(self, service):
        envelope = call(service, "get_irr")
        assert not envelope["ok"]
        assert envelope["error"]["stage"] == "server"
        assert "get_ir" in envelope["error"]["message"]

    def test_unknown_parameter_suggests(self, service):
        envelope = call(service, "get_ir", desing="d")
        assert not envelope["ok"]
        assert "design" in envelope["error"]["message"]

    def test_missing_parameter(self, service):
        envelope = call(service, "update_file", design="d")
        assert not envelope["ok"]
        assert "filename" in envelope["error"]["message"]

    def test_malformed_envelope_recovers_id(self, service):
        envelope = service.handle_sync({"id": 9, "params": {}})
        assert not envelope["ok"]
        assert envelope["id"] == 9
        assert envelope["error"]["stage"] == "server"

    def test_options_ride_through(self, service):
        call(
            service,
            "open_design",
            design="d",
            files={"d.td": GOOD_SOURCE},
            options={
                "targets": ["dot"],
                "backend_options": {"dot": {"rankdir": "TB"}},
                "project_name": "served",
            },
        )
        outputs = call(service, "get_outputs", design="d", target="dot")
        assert outputs["ok"]
        (text,) = outputs["result"]["files"].values()
        assert 'rankdir="TB"' in text

    def test_lazy_backend_outputs(self, service):
        call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        outputs = call(service, "get_outputs", design="d", target="vhdl")
        assert outputs["ok"] and outputs["result"]["files"]

    def test_get_diagnostics(self, service):
        call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        envelope = call(service, "get_diagnostics", design="d")
        assert envelope["ok"]
        for diag in envelope["result"]["diagnostics"]:
            assert {"severity", "stage", "message", "span"} <= set(diag)

    def test_report_and_stats(self, service):
        call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
        call(service, "get_ir", design="d")
        report = call(service, "get_report")["result"]
        assert report["designs"]["d"]["status"] == "fresh"
        stats = call(service, "stats")["result"]
        assert stats["workspace"]["designs"]["fresh"] == 1
        assert stats["server"]["requests"] >= 3
        assert stats["server"]["methods"]["get_ir"] == 1

    def test_remove_file_and_design(self, service):
        call(
            service, "open_design", design="d",
            files={"d.td": GOOD_SOURCE, "extra.td": "const x = 1;\n"},
        )
        removed = call(service, "remove_file", design="d", filename="extra.td")
        assert removed["ok"]
        gone = call(service, "remove_design", design="d")
        assert gone["ok"] and gone["result"]["removed"]
        assert not call(service, "get_ir", design="d")["ok"]

    def test_list_backends(self, service):
        backends = call(service, "list_backends")["result"]["backends"]
        by_name = {b["name"]: b for b in backends}
        assert {"vhdl", "verilog", "ir", "tydi-ir", "dot"} <= set(by_name)
        # The option schemas ride along for remote --backend-opt tooling.
        dot_options = {o["name"]: o for o in by_name["dot"]["options"]}
        assert dot_options["rankdir"]["default"] == "LR"
        assert by_name["tydi-ir"]["options"] == []

    def test_shutdown_sets_event(self, service):
        envelope = call(service, "shutdown")
        assert envelope["ok"] and envelope["result"]["stopping"]
        assert service.shutdown_requested.is_set()

    def test_errors_count_in_stats(self, service):
        call(service, "get_ir", design="nope")
        stats = call(service, "stats")["result"]["server"]
        assert stats["errors"] >= 1

    def test_service_rejects_conflicting_wiring(self):
        from repro.workspace import Workspace

        with pytest.raises(ValueError):
            CompileService(Workspace(cache=None), cache_dir="somewhere")

    def test_service_shares_cache_dir_with_cli_sessions(self, tmp_path):
        service = CompileService(cache_dir=tmp_path / "cache", jobs=1)
        try:
            call(service, "open_design", design="d", files={"d.td": GOOD_SOURCE})
            assert call(service, "get_ir", design="d")["ok"]
            assert list((tmp_path / "cache").glob("*.pkl"))
        finally:
            service.close()


class TestTransport:
    def test_full_session_over_tcp(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                assert client.ping()["protocol"] == PROTOCOL_VERSION
                client.open_design("d", files={"d.td": GOOD_SOURCE})
                reference = compile_sources([(GOOD_SOURCE, "d.td")], cache=None)
                assert client.get_ir("d") == reference.ir_text()
                assert client.get_outputs("d", "ir")
                assert client.get_diagnostics("d") == []
                assert client.get_report()["designs"]["d"]["status"] == "fresh"
                assert client.stats()["server"]["requests"] >= 5
                client.shutdown()

    def test_remote_compile_error_raises(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("broken", files={"x.td": BROKEN_SOURCE})
                with pytest.raises(RemoteCompileError) as excinfo:
                    client.get_ir("broken")
                assert excinfo.value.remote_type == "TydiSyntaxError"
                assert excinfo.value.remote_stage == "parse"

    def test_error_envelope_matches_oneshot_error(self):
        """The served error is the same error one-shot compilation raises."""
        from repro.errors import TydiError

        with pytest.raises(TydiError) as oneshot:
            compile_sources([(BROKEN_SOURCE, "x.td")], cache=None)
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("broken", files={"x.td": BROKEN_SOURCE})
                with pytest.raises(RemoteCompileError) as served:
                    client.get_ir("broken")
        assert served.value.remote_type == type(oneshot.value).__name__
        assert served.value.envelope["rendered"] == oneshot.value.render()

    def test_many_requests_one_connection(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": GOOD_SOURCE})
                first = client.get_ir("d")
                for _ in range(10):
                    assert client.get_ir("d") == first

    def test_malformed_json_line_gets_error_envelope(self):
        with ServerThread() as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"this is not json\n")
                handle.flush()
                envelope = json.loads(handle.readline())
        assert not envelope["ok"]
        assert envelope["error"]["stage"] == "server"
        assert envelope["id"] is None

    def test_http_post_ping(self):
        with ServerThread() as server:
            envelope = http_post(*server.address, {"id": 4, "method": "ping"})
        assert envelope["ok"] and envelope["id"] == 4
        assert envelope["result"]["protocol"] == PROTOCOL_VERSION

    def test_http_post_compile(self):
        with ServerThread() as server:
            host, port = server.address
            opened = http_post(
                host, port,
                {"method": "open_design",
                 "params": {"design": "d", "files": {"d.td": GOOD_SOURCE}}},
            )
            assert opened["ok"]
            ir = http_post(host, port, {"method": "get_ir", "params": {"design": "d"}})
        reference = compile_sources([(GOOD_SOURCE, "d.td")], cache=None)
        assert ir["result"]["ir"] == reference.ir_text()

    def test_http_get_is_rejected(self):
        with ServerThread() as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
        assert raw.startswith(b"HTTP/1.1 405")
        envelope = json.loads(raw.partition(b"\r\n\r\n")[2])
        assert not envelope["ok"]

    def test_shutdown_stops_server_thread(self):
        server = ServerThread().start()
        with CompileClient(*server.address) as client:
            client.shutdown()
        server.stop(timeout=10)  # raises if the thread hangs

    def test_connect_to_dead_server_is_clean_error(self):
        with ServerThread() as probe:
            address = probe.address
        client = CompileClient(*address, timeout=2)
        with pytest.raises(TydiServerError):
            client.ping()

    def test_shutdown_completes_with_an_idle_connection_open(self):
        """An idle client parked in a read must not hold shutdown hostage
        (Python 3.12+ wait_closed() waits for every connection handler)."""
        server = ServerThread().start()
        idle = CompileClient(*server.address).connect()  # never sends anything
        try:
            with CompileClient(*server.address) as client:
                client.shutdown()
            server.stop(timeout=15)  # raises if the idle connection wedges it
        finally:
            idle.close()

    def test_unknown_methods_are_bucketed_in_stats(self):
        service = CompileService(jobs=1)
        try:
            for index in range(5):
                service.handle_sync({"method": f"bogus_{index}"})
            stats = service.handle_sync({"method": "stats"})["result"]["server"]
            assert stats["methods"]["<unknown>"] == 5
            assert not any(key.startswith("bogus_") for key in stats["methods"])
        finally:
            service.close()

    def test_two_clients_share_the_warm_workspace(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as one:
                one.open_design("d", files={"d.td": GOOD_SOURCE})
                ir = one.get_ir("d")
            with CompileClient(*server.address) as two:
                assert two.get_ir("d") == ir
                stats = two.stats()
        assert stats["workspace"]["designs"]["fresh"] == 1
