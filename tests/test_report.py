"""Unit tests for the table/figure regeneration module."""

import pytest

from repro.report import figure1, figure2, figure3, figure4, table1, table2, table3, table4
from repro.report.loc import PAPER_TABLE4, loc_breakdown, table4_rows


class TestTables:
    def test_table1_lists_all_terms(self):
        text = table1()
        for term in ("Null", "Bit(x)", "Group(x,y)", "Union(x,y)", "Stream(x)",
                     "Port", "Streamlet", "Implementation", "Connection", "Instance",
                     "Clock domain"):
            assert term in text

    def test_table2_lists_generative_features(self):
        text = table2()
        assert "for x in x_array" in text
        assert "assert(var)" in text

    def test_table3_compares_seven_hdls(self):
        text = table3()
        for language in ("Genesis2", "Clash", "Vitis HLS", "CHISEL", "Kamel", "Veriscala", "Tydi-lang"):
            assert language in text

    def test_table4_has_all_query_rows(self, compiled_queries):
        text = table4()
        for row in ("TPC-H 1 (without sugaring)", "TPC-H 1", "TPC-H 3", "TPC-H 5", "TPC-H 6", "TPC-H 19"):
            assert row in text
        assert "LoCs" in text and "LoCf" in text

    def test_table4_rows_match_paper_row_set(self, compiled_queries):
        rows = table4_rows()
        assert {row.query for row in rows} == set(PAPER_TABLE4)


class TestFigures:
    def test_figure1_mentions_pipeline_stages(self):
        text = figure1()
        for stage in ("Tydi source code", "frontend", "Tydi IR", "backend", "VHDL", "simulator"):
            assert stage.lower() in text.lower()

    def test_figure2_mentions_big_data_flow(self):
        text = figure2()
        assert "Arrow" in text and "Fletcher" in text and "SQL" in text

    def test_figure3_shows_live_stage_log(self):
        text = figure3()
        assert "parse:" in text
        assert "drc:" in text

    def test_figure4_shows_before_and_after(self):
        text = figure4()
        assert "before sugaring" in text
        assert "after sugaring" in text
        assert "duplicator" in text
        assert "voider" in text
        assert "(auto-inserted)" in text


class TestLocBreakdown:
    def test_breakdown_ratio(self):
        breakdown = loc_breakdown("a;\nb;\n", {"x.vhd": "\n".join(["line;"] * 20)})
        assert breakdown.tydi_loc == 2
        assert breakdown.vhdl_loc == 20
        assert breakdown.ratio == 10.0

    def test_zero_tydi_loc(self):
        assert loc_breakdown("", {}).ratio == 0.0
