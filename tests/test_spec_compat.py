"""Unit tests for type equality and connection compatibility (DRC rules)."""

from repro.spec.compat import (
    check_connection_compatibility,
    strictly_equal,
    structurally_equal,
)
from repro.spec.logical_types import Bit, Group, Null, Stream, Union


def named_group(name="Sample"):
    return Group.of(name, a=Bit(8), b=Bit(8))


class TestStructuralEquality:
    def test_identical_bits(self):
        assert structurally_equal(Bit(8), Bit(8))
        assert not structurally_equal(Bit(8), Bit(9))

    def test_null(self):
        assert structurally_equal(Null(), Null())
        assert not structurally_equal(Null(), Bit(1))

    def test_groups_compare_fields(self):
        assert structurally_equal(named_group(), named_group("Other"))
        different = Group.of("X", a=Bit(8), c=Bit(8))
        assert not structurally_equal(named_group(), different)

    def test_group_field_order_matters(self):
        a = Group.of("A", x=Bit(1), y=Bit(2))
        b = Group.of("B", y=Bit(2), x=Bit(1))
        assert not structurally_equal(a, b)

    def test_unions(self):
        a = Union.of("U", x=Bit(4), y=Bit(8))
        b = Union.of("V", x=Bit(4), y=Bit(8))
        assert structurally_equal(a, b)
        assert not structurally_equal(a, Union.of("W", x=Bit(4)))

    def test_streams_compare_parameters(self):
        a = Stream.new(Bit(8), dimension=1)
        assert structurally_equal(a, Stream.new(Bit(8), dimension=1))
        assert not structurally_equal(a, Stream.new(Bit(8), dimension=2))
        assert not structurally_equal(a, Stream.new(Bit(8), dimension=1, throughput=2))

    def test_group_vs_union_never_equal(self):
        g = Group.of("G", a=Bit(4))
        u = Union.of("U", a=Bit(4))
        assert not structurally_equal(g, u)


class TestStrictEquality:
    def test_same_object_is_equal(self):
        t = Stream.new(Bit(8))
        assert strictly_equal(t, t)

    def test_same_declared_name_is_equal(self):
        assert strictly_equal(named_group("T"), named_group("T"))

    def test_structurally_equal_but_distinct_names_not_equal(self):
        # The "type equality problem" of Section IV-B: same bits, different purpose.
        assert not strictly_equal(named_group("Metres"), named_group("Feet"))

    def test_anonymous_structural_twins_not_equal(self):
        a = Group.of(None, x=Bit(8))
        b = Group.of(None, x=Bit(8))
        assert not strictly_equal(a, b)

    def test_streams_around_same_named_element(self):
        element = named_group("Elem")
        a = Stream.new(element, dimension=1)
        b = Stream.new(element, dimension=1)
        assert strictly_equal(a, b)

    def test_streams_with_different_params_not_equal(self):
        element = named_group("Elem")
        assert not strictly_equal(Stream.new(element, dimension=1), Stream.new(element, dimension=2))


class TestConnectionCompatibility:
    def test_compatible_connection(self):
        t = Stream.new(Bit(8), dimension=1)
        assert check_connection_compatibility(t, t)

    def test_type_mismatch_reported(self):
        report = check_connection_compatibility(Stream.new(Bit(8)), Stream.new(Bit(16)))
        assert not report
        assert any("not strict" in reason for reason in report.reasons)

    def test_structural_mode_accepts_twins(self):
        a = Stream.new(Group.of("A", x=Bit(8)))
        b = Stream.new(Group.of("B", x=Bit(8)))
        assert not check_connection_compatibility(a, b, strict=True)
        assert check_connection_compatibility(a, b, strict=False)

    def test_complexity_direction(self):
        source = Stream.new(Bit(8), complexity=7)
        sink = Stream.new(Bit(8), complexity=1)
        report = check_connection_compatibility(source, sink, strict=False)
        assert not report
        assert any("complexity" in reason for reason in report.reasons)

    def test_complexity_ok_when_sink_higher(self):
        element = Group.of("E", x=Bit(8))
        source = Stream.new(element, complexity=1)
        sink = Stream.new(element, complexity=7)
        assert check_connection_compatibility(source, sink, strict=False)

    def test_clock_domain_mismatch(self):
        t = Stream.new(Bit(8))
        report = check_connection_compatibility(t, t, source_clock="clk_a", sink_clock="clk_b")
        assert not report
        assert any("clock domain" in reason for reason in report.reasons)

    def test_default_clock_domains_match(self):
        t = Stream.new(Bit(8))
        assert check_connection_compatibility(t, t, source_clock=None, sink_clock="default")

    def test_throughput_mismatch(self):
        element = Group.of("E", x=Bit(8))
        fast = Stream.new(element, throughput=4)
        slow = Stream.new(element, throughput=1)
        report = check_connection_compatibility(fast, slow, strict=False)
        assert any("throughput" in reason for reason in report.reasons)
