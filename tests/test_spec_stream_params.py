"""Unit tests for stream parameters: complexity, throughput, direction."""

from fractions import Fraction

import pytest

from repro.errors import TydiTypeError
from repro.spec.stream_params import Complexity, Direction, Synchronicity, Throughput


class TestComplexity:
    def test_parse_int(self):
        assert Complexity.parse(4).levels == (4,)

    def test_parse_dotted(self):
        assert Complexity.parse("4.1.3").levels == (4, 1, 3)

    def test_parse_existing(self):
        c = Complexity((2,))
        assert Complexity.parse(c) is c

    def test_parse_integral_float(self):
        assert Complexity.parse(3.0).levels == (3,)

    def test_parse_bad_string(self):
        with pytest.raises(TydiTypeError):
            Complexity.parse("high")

    def test_major_out_of_range(self):
        with pytest.raises(TydiTypeError):
            Complexity((0,))
        with pytest.raises(TydiTypeError):
            Complexity((9,))

    def test_empty_rejected(self):
        with pytest.raises(TydiTypeError):
            Complexity(())

    def test_source_satisfies_higher_sink(self):
        assert Complexity.parse(1).satisfies(Complexity.parse(7))

    def test_source_does_not_satisfy_lower_sink(self):
        assert not Complexity.parse(7).satisfies(Complexity.parse(1))

    def test_lexicographic_ordering(self):
        assert Complexity.parse("4.1").satisfies(Complexity.parse("4.2"))
        assert not Complexity.parse("4.2").satisfies(Complexity.parse("4.1"))

    def test_equal_satisfies(self):
        assert Complexity.parse("2.3").satisfies(Complexity.parse("2.3"))

    def test_str_roundtrip(self):
        assert str(Complexity.parse("4.1.3")) == "4.1.3"


class TestThroughput:
    def test_default_single_lane(self):
        assert Throughput().lanes == 1

    def test_integer(self):
        assert Throughput.of(4).lanes == 4

    def test_fractional_rounds_up(self):
        assert Throughput.of(1.5).lanes == 2
        assert Throughput.of(0.25).lanes == 1

    def test_fraction_input(self):
        assert Throughput.of(Fraction(3, 2)).ratio == Fraction(3, 2)

    def test_zero_rejected(self):
        with pytest.raises(TydiTypeError):
            Throughput.of(0)

    def test_negative_rejected(self):
        with pytest.raises(TydiTypeError):
            Throughput(Fraction(-1))

    def test_multiplication(self):
        assert float(Throughput.of(2) * Throughput.of(3)) == 6.0

    def test_str(self):
        assert str(Throughput.of(2)) == "2"
        assert str(Throughput.of(0.5)) == "0.5"


class TestEnums:
    def test_direction_values(self):
        assert str(Direction.FORWARD) == "Forward"
        assert str(Direction.REVERSE) == "Reverse"

    def test_synchronicity_values(self):
        assert {s.value for s in Synchronicity} == {"Sync", "Flatten", "Desync", "FlatDesync"}
