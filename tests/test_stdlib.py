"""Unit tests for the standard library: source, primitives and RTL generators."""

import pytest

from repro.errors import TydiBackendError
from repro.ir.model import ClockDomain, Implementation, Port, PortDirection, Project, Streamlet
from repro.lang.compile import compile_project
from repro.lang.parser import parse_source
from repro.spec.logical_types import Bit, Stream
from repro.stdlib.components import (
    PRIMITIVE_KINDS,
    build_duplicator,
    build_voider,
    is_primitive,
    primitive_kind,
)
from repro.stdlib.generators import GENERATORS, generate_primitive_architecture
from repro.stdlib.source import STDLIB_SOURCE, stdlib_loc


class TestStdlibSource:
    def test_source_parses(self):
        unit = parse_source(STDLIB_SOURCE, "std.td")
        assert unit.package == "std"
        assert len(unit.declarations) > 30

    def test_loc_is_comparable_to_paper(self):
        # The paper reports 151 LoC for its prototype standard library.
        assert 80 <= stdlib_loc() <= 250

    def test_stdlib_compiles_standalone(self):
        # Compiling only the stdlib must parse and evaluate cleanly.  Almost
        # everything is a template, so only the single non-template entry
        # (`not_i`, fixed at one channel) gets instantiated.
        result = compile_project("", include_stdlib=True)
        assert result.project.statistics()["implementations"] <= 1

    def test_every_primitive_kind_has_generator(self):
        assert set(GENERATORS) == PRIMITIVE_KINDS


class TestPrimitiveRecognition:
    def test_kind_from_template_metadata(self):
        impl = Implementation("x", "s_dummy", external=True, metadata={"template": "adder_i"})
        impl.streamlet = "s"
        assert primitive_kind(impl) == "adder"

    def test_kind_from_explicit_metadata(self):
        impl = Implementation("x", "s", external=True, metadata={"primitive": "voider"})
        assert primitive_kind(impl) == "voider"
        assert is_primitive(impl)

    def test_unknown_template_is_not_primitive(self):
        impl = Implementation("x", "s", external=True, metadata={"template": "mystery_i"})
        assert primitive_kind(impl) is None
        assert not is_primitive(impl)


class TestBuilders:
    def test_duplicator_builder(self):
        project = Project()
        stream = Stream.new(Bit(8), dimension=1)
        impl = build_duplicator(project, stream, 3)
        streamlet = project.streamlet(impl.streamlet)
        assert len(streamlet.outputs()) == 3
        assert impl.metadata["primitive"] == "duplicator"

    def test_duplicator_reused_for_same_type(self):
        project = Project()
        stream = Stream.new(Bit(8), dimension=1)
        first = build_duplicator(project, stream, 2)
        second = build_duplicator(project, stream, 2)
        assert first is second

    def test_duplicator_requires_two_channels(self):
        with pytest.raises(ValueError):
            build_duplicator(Project(), Stream.new(Bit(8)), 1)

    def test_voider_builder(self):
        project = Project()
        impl = build_voider(project, Stream.new(Bit(8), dimension=1))
        streamlet = project.streamlet(impl.streamlet)
        assert len(streamlet.ports) == 1
        assert impl.metadata["primitive"] == "voider"


def _primitive_project(kind: str):
    """Build a minimal project exercising one primitive kind's generator."""
    stream = Stream.new(Bit(16), dimension=1)
    bool_t = Stream.new(Bit(1), dimension=1)
    project = Project()
    ports: list[Port]
    if kind in ("duplicator", "demux"):
        ports = [Port("input", stream, PortDirection.IN)] + [
            Port(f"output_{i}", stream, PortDirection.OUT) for i in range(2)
        ]
    elif kind == "mux":
        ports = [Port(f"input_{i}", stream, PortDirection.IN) for i in range(2)] + [
            Port("output", stream, PortDirection.OUT)
        ]
    elif kind == "voider":
        ports = [Port("input", stream, PortDirection.IN)]
    elif kind.startswith("const_"):
        ports = [Port("output", stream, PortDirection.OUT)]
    elif kind in ("adder", "subtractor", "multiplier", "divider") or (
        kind.startswith("compare_") and kind != "compare_const_eq"
    ):
        out = bool_t if kind.startswith("compare_") else stream
        ports = [
            Port("lhs", stream, PortDirection.IN),
            Port("rhs", stream, PortDirection.IN),
            Port("output" if not kind.startswith("compare_") else "result", out, PortDirection.OUT),
        ]
    elif kind == "compare_const_eq":
        ports = [Port("input", stream, PortDirection.IN), Port("result", bool_t, PortDirection.OUT)]
    elif kind in ("or", "and", "not"):
        count = 1 if kind == "not" else 2
        ports = [Port(f"input_{i}", bool_t, PortDirection.IN) for i in range(count)] + [
            Port("output", bool_t, PortDirection.OUT)
        ]
    elif kind == "filter":
        ports = [
            Port("input", stream, PortDirection.IN),
            Port("keep", bool_t, PortDirection.IN),
            Port("output", stream, PortDirection.OUT),
        ]
    elif kind in ("sum", "count", "avg", "min_acc", "max_acc"):
        ports = [Port("input", stream, PortDirection.IN), Port("output", stream, PortDirection.OUT)]
    elif kind.startswith("group_"):
        ports = [
            Port("key", stream, PortDirection.IN),
            Port("value", stream, PortDirection.IN),
            Port("output", stream, PortDirection.OUT),
        ]
    elif kind == "combine2":
        ports = [
            Port("in0", stream, PortDirection.IN),
            Port("in1", stream, PortDirection.IN),
            Port("output", Stream.new(Bit(32), dimension=1), PortDirection.OUT),
        ]
    else:  # pragma: no cover - keeps the test honest if kinds are added
        raise AssertionError(f"no port layout defined for primitive {kind!r}")
    streamlet = Streamlet(f"{kind}_s", ports)
    project.add_streamlet(streamlet)
    impl = Implementation(
        f"{kind}_impl",
        streamlet.name,
        external=True,
        metadata={"primitive": kind, "arguments": (None, 42 if "str" not in kind else "REF")},
    )
    project.add_implementation(impl)
    return project, impl, streamlet


class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(PRIMITIVE_KINDS))
    def test_generator_produces_architecture(self, kind):
        project, impl, streamlet = _primitive_project(kind)
        text = generate_primitive_architecture(kind, impl, streamlet, project)
        assert f"architecture behavioural of {streamlet.name} is" in text
        assert text.rstrip().endswith("end architecture behavioural;")

    @pytest.mark.parametrize("kind", sorted(PRIMITIVE_KINDS))
    def test_generator_drives_every_output(self, kind):
        project, impl, streamlet = _primitive_project(kind)
        text = generate_primitive_architecture(kind, impl, streamlet, project)
        for port in streamlet.outputs():
            assert f"{port.name}_valid" in text
        for port in streamlet.inputs():
            assert f"{port.name}_ready" in text

    def test_unknown_kind_rejected(self):
        project, impl, streamlet = _primitive_project("adder")
        with pytest.raises(TydiBackendError):
            generate_primitive_architecture("teleporter", impl, streamlet, project)

    def test_const_generator_embeds_value(self):
        project, impl, streamlet = _primitive_project("const_int_generator")
        text = generate_primitive_architecture("const_int_generator", impl, streamlet, project)
        assert "c_value" in text
        assert format(42, "b") in text.replace('"', "")
