"""Tests of the ``tydi-serve`` CLI (:mod:`repro.server.cli`).

``serve`` is driven for real on a background thread (the same daemon code
path CI's smoke job exercises), ``request``/``shutdown`` against live
servers, and the parameter plumbing (``--param`` JSON coercion,
``--json`` merging, ``--file`` attachment) as units.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.server import CompileClient, ServerThread
from repro.server.cli import _collect_params, _parse_param_value, build_arg_parser, main

GOOD_SOURCE = (
    "type link_t = Stream(Bit(8));\n"
    "streamlet pass_s { i: link_t in, o: link_t out, }\n"
    "external impl pass_i of pass_s;\n"
    "top pass_i;\n"
)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestServeCommand:
    def test_serve_until_shutdown_request(self, tmp_path):
        port = _free_port()
        exit_codes: list[int] = []

        def run_daemon() -> None:
            exit_codes.append(
                main(["serve", "--port", str(port), "--jobs", "1",
                      "--cache-dir", str(tmp_path / "cache")])
            )

        daemon = threading.Thread(target=run_daemon, daemon=True)
        daemon.start()
        with CompileClient(port=port, connect_retry_for=15.0) as client:
            assert client.ping()["jobs"] == 1
            client.open_design("d", files={"d.td": GOOD_SOURCE})
            assert client.get_ir("d")
        assert main(["shutdown", "--port", str(port)]) == 0
        daemon.join(timeout=30)
        assert not daemon.is_alive(), "serve did not exit after shutdown"
        assert exit_codes == [0]
        # The served session left warm on-disk artefacts behind.
        assert list((tmp_path / "cache").glob("*.pkl"))

    def test_serve_rejects_bad_cache_wiring(self, capsys):
        assert main(["serve", "--max-cache-mb", "10"]) == 1
        assert "cache_dir" in capsys.readouterr().err

    def test_serve_rejects_bad_jobs(self, capsys):
        assert main(["serve", "--jobs", "0"]) == 1


class TestRequestCommand:
    def test_request_ping_prints_envelope(self, capsys):
        with ServerThread() as server:
            host, port = server.address
            code = main(["request", "ping", "--host", host, "--port", str(port)])
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] and envelope["result"]["protocol"] >= 1

    def test_request_open_and_query_with_files(self, tmp_path, capsys):
        source = tmp_path / "design.td"
        source.write_text(GOOD_SOURCE)
        with ServerThread() as server:
            host, port = server.address
            endpoint = ["--host", host, "--port", str(port)]
            assert main(["request", "open_design", *endpoint,
                         "--param", "design=d", "--file", str(source)]) == 0
            capsys.readouterr()
            assert main(["request", "get_ir", *endpoint, "--param", "design=d"]) == 0
            envelope = json.loads(capsys.readouterr().out)
        assert "streamlet pass_s" in envelope["result"]["ir"]

    def test_request_error_envelope_exits_nonzero(self, capsys):
        with ServerThread() as server:
            host, port = server.address
            code = main(["request", "get_ir", "--host", host, "--port", str(port),
                         "--param", "design=missing"])
        assert code == 1
        envelope = json.loads(capsys.readouterr().out)
        assert not envelope["ok"]
        assert envelope["error"]["type"] == "TydiWorkspaceError"

    def test_request_against_dead_server_fails_cleanly(self, capsys):
        port = _free_port()
        code = main(["request", "ping", "--port", str(port), "--retry-for", "0"])
        assert code == 1
        assert "cannot connect" in capsys.readouterr().err


class TestParamPlumbing:
    def _args(self, *argv: str):
        return build_arg_parser().parse_args(["request", "ping", *argv])

    def test_param_values_parse_as_json_with_string_fallback(self):
        assert _parse_param_value("true") is True
        assert _parse_param_value("3") == 3
        assert _parse_param_value('{"a": 1}') == {"a": 1}
        assert _parse_param_value("plain text") == "plain text"

    def test_json_and_param_merge(self):
        args = self._args("--json", '{"design": "d", "replace": false}',
                          "--param", "replace=true")
        assert _collect_params(args) == {"design": "d", "replace": True}

    def test_file_attaches_source(self, tmp_path):
        source = tmp_path / "x.td"
        source.write_text("const a = 1;\n")
        args = self._args("--param", "design=d", "--file", str(source))
        params = _collect_params(args)
        assert params["files"] == {str(source): "const a = 1;\n"}

    def test_bad_param_is_systemexit(self):
        with pytest.raises(SystemExit):
            _collect_params(self._args("--param", "no-equals-sign"))

    def test_bad_json_is_systemexit(self):
        with pytest.raises(SystemExit):
            _collect_params(self._args("--json", "{not json"))

    def test_missing_file_is_systemexit(self, tmp_path):
        with pytest.raises(SystemExit):
            _collect_params(self._args("--file", str(tmp_path / "absent.td")))
