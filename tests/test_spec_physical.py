"""Unit tests for the logical-to-physical stream expansion."""

import pytest

from repro.errors import TydiTypeError
from repro.spec.logical_types import Bit, Group, Null, Stream
from repro.spec.physical import expand_stream, stream_wire_summary


class TestExpandStream:
    def test_handshake_always_present(self):
        physical = expand_stream(Stream.new(Bit(8)))
        names = physical.signal_names()
        assert "valid" in names and "ready" in names

    def test_ready_is_reverse(self):
        physical = expand_stream(Stream.new(Bit(8)))
        assert physical.signal("ready").role == "reverse"
        assert physical.signal("valid").role == "forward"

    def test_data_width_matches_element(self):
        physical = expand_stream(Stream.new(Group.of("G", a=Bit(3), b=Bit(5))))
        assert physical.signal("data").width == 8

    def test_no_data_signal_for_null_element(self):
        physical = expand_stream(Stream.new(Null(), dimension=1))
        assert "data" not in physical.signal_names()

    def test_last_width_is_dimension(self):
        physical = expand_stream(Stream.new(Bit(8), dimension=2))
        assert physical.signal("last").width == 2

    def test_no_last_for_flat_stream(self):
        physical = expand_stream(Stream.new(Bit(8)))
        assert "last" not in physical.signal_names()

    def test_multi_lane_data_width(self):
        physical = expand_stream(Stream.new(Bit(8), throughput=4))
        assert physical.signal("data").width == 32
        assert physical.lanes == 4

    def test_endi_present_with_multiple_lanes(self):
        physical = expand_stream(Stream.new(Bit(8), throughput=4))
        assert physical.signal("endi").width == 2

    def test_stai_only_at_high_complexity(self):
        low = expand_stream(Stream.new(Bit(8), throughput=4, complexity=1))
        high = expand_stream(Stream.new(Bit(8), throughput=4, complexity=6))
        assert "stai" not in low.signal_names()
        assert "stai" in high.signal_names()

    def test_strb_at_complexity_7(self):
        physical = expand_stream(Stream.new(Bit(8), complexity=7))
        assert "strb" in physical.signal_names()

    def test_per_lane_last_at_complexity_8(self):
        physical = expand_stream(Stream.new(Bit(8), dimension=2, throughput=2, complexity=8))
        assert physical.signal("last").width == 4

    def test_user_signal(self):
        physical = expand_stream(Stream.new(Bit(8), user=Bit(3)))
        assert physical.signal("user").width == 3

    def test_non_stream_rejected(self):
        with pytest.raises(TydiTypeError):
            expand_stream(Bit(8))

    def test_wire_count_positive(self):
        physical = expand_stream(Stream.new(Bit(8), dimension=1))
        assert physical.wire_count() >= 11  # 8 data + last + valid + ready


class TestWireSummary:
    def test_summary_keys(self):
        summary = stream_wire_summary(Stream.new(Bit(16), dimension=1, throughput=2))
        assert summary["element_width"] == 16
        assert summary["lanes"] == 2
        assert summary["dimension"] == 1
        assert summary["forward_width"] >= 32
