"""Unit tests for the compile driver (the Figure-3 pipeline)."""

import pytest

from repro.errors import TydiNameError
from repro.lang.compile import compile_project, compile_sources


SIMPLE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""


class TestCompileDriver:
    def test_stage_log_order(self):
        result = compile_project(SIMPLE, include_stdlib=False)
        assert result.stage_names() == ["parse", "evaluate", "sugaring", "drc", "ir"]

    def test_stages_can_be_disabled(self):
        result = compile_project(SIMPLE, include_stdlib=False, sugaring=False, run_drc=False)
        assert result.stage_names() == ["parse", "evaluate", "ir"]
        assert result.sugaring is None
        assert result.drc is None

    def test_top_by_keyword_argument(self):
        source = SIMPLE.replace("top echo_i;", "")
        result = compile_project(source, include_stdlib=False, top="echo_i")
        assert result.project.top == "echo_i"

    def test_unknown_top_rejected(self):
        with pytest.raises(TydiNameError):
            compile_project(SIMPLE, include_stdlib=False, top="missing_i")

    def test_without_top_all_concrete_impls_built(self):
        source = SIMPLE.replace("top echo_i;", "")
        result = compile_project(source, include_stdlib=False)
        assert "echo_i" in result.project.implementations
        assert result.project.top is None

    def test_multiple_sources_share_namespace(self):
        types = "type byte_t = Stream(Bit(8), d=1);"
        design = """
        streamlet echo_s { i: byte_t in, o: byte_t out, }
        impl echo_i of echo_s { i => o, }
        top echo_i;
        """
        result = compile_sources([(types, "types.td"), (design, "design.td")], include_stdlib=False)
        assert result.project.top == "echo_i"

    def test_stdlib_included_by_default(self):
        result = compile_project(SIMPLE)
        # The stdlib declares its templates but only used ones are instantiated.
        assert result.units[0].package == "std"

    def test_ir_text_available(self):
        result = compile_project(SIMPLE, include_stdlib=False)
        ir = result.ir_text()
        assert "streamlet echo_s" in ir
        assert "impl echo_i of echo_s" in ir
        assert "top echo_i;" in ir

    def test_diagnostics_accumulate_sugaring_info(self):
        source = """
        type t = Stream(Bit(4), d=1);
        streamlet wide_s { a: t out, b: t out, }
        external impl wide_i of wide_s;
        streamlet top_s { o: t out, }
        impl top_i of top_s { instance w(wide_i), w.a => o, }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert any("voider" in d.message for d in result.diagnostics)

    def test_project_name_propagates(self):
        result = compile_project(SIMPLE, include_stdlib=False, project_name="my_design")
        assert result.project.name == "my_design"
