"""Unit tests for simulation-block ("scripted") behaviours (Section V-A)."""

import pytest

from repro.lang.compile import compile_project
from repro.sim import Simulator
from repro.sim.testbench_gen import coverage_of


def run(source, drives, outputs, **kwargs):
    project = compile_project(source).project
    simulator = Simulator(project, **kwargs)
    for port, values in drives.items():
        simulator.drive(port, values)
    trace = simulator.run()
    return trace, simulator


HEADER = "type num = Stream(Bit(32), d=1);\n"


DOUBLER = HEADER + """
streamlet doubler_s { input: num in, output: num out, }
external impl doubler_i of doubler_s {
    simulation {
        state seen = 0;
        on receive(input) {
            state seen = seen + 1;
            send(output, input * 2);
            ack(input);
        }
    }
}
streamlet top_s { i: num in, o: num out, }
impl top_i of top_s { instance d(doubler_i), i => d.input, d.output => o, }
top top_i;
"""


class TestScriptedBehavior:
    def test_send_and_ack(self):
        trace, _ = run(DOUBLER, {"i": [1, 2, 3]}, ["o"])
        assert trace.output_values("o") == [2, 4, 6]

    def test_state_variable_updates_logged(self):
        trace, simulator = run(DOUBLER, {"i": [1, 2, 3]}, ["o"])
        log = simulator.components["d"].state_log
        seen_values = [value for _, name, value in log if name == "seen"]
        assert seen_values[-1] == 3

    def test_coverage_reports_states(self):
        trace, _ = run(DOUBLER, {"i": [1, 2]}, ["o"])
        coverage = coverage_of(trace)
        assert "d.seen" in coverage["states_visited"]
        assert coverage["ports_driven"] == ["i"]

    def test_two_port_synchronisation(self):
        source = HEADER + """
        streamlet merge_s { a: num in, b: num in, output: num out, }
        external impl merge_i of merge_s {
            simulation {
                on receive(a) && receive(b) {
                    send(output, a + b);
                    ack(a);
                    ack(b);
                }
            }
        }
        streamlet top_s { x: num in, y: num in, o: num out, }
        impl top_i of top_s { instance m(merge_i), x => m.a, y => m.b, m.output => o, }
        top top_i;
        """
        trace, _ = run(source, {"x": [1, 2, 3], "y": [10, 20, 30]}, ["o"])
        assert trace.output_values("o") == [11, 22, 33]

    def test_delay_statement_defers_output(self):
        source = HEADER + """
        streamlet slow_s { input: num in, output: num out, }
        external impl slow_i of slow_s {
            simulation {
                on receive(input) {
                    delay 8;
                    send(output, input);
                    ack(input);
                }
            }
        }
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance s(slow_i), i => s.input, s.output => o, }
        top top_i;
        """
        trace, _ = run(source, {"i": [5]}, ["o"])
        time, packet = trace.outputs["o"][0]
        assert packet.value == 5
        assert time >= 8

    def test_conditional_statement(self):
        source = HEADER + """
        streamlet clamp_s { input: num in, output: num out, }
        external impl clamp_i of clamp_s {
            simulation {
                on receive(input) {
                    if (input > 100) {
                        send(output, 100);
                    } else {
                        send(output, input);
                    }
                    ack(input);
                }
            }
        }
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance c(clamp_i), i => c.input, c.output => o, }
        top top_i;
        """
        trace, _ = run(source, {"i": [50, 150, 99]}, ["o"])
        assert trace.output_values("o") == [50, 100, 99]

    def test_implicit_ack_prevents_livelock(self):
        # A handler that forgets ack() must still consume the triggering packet.
        source = HEADER + """
        streamlet tap_s { input: num in, output: num out, }
        external impl tap_i of tap_s {
            simulation {
                on receive(input) {
                    send(output, input);
                }
            }
        }
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance t(tap_i), i => t.input, t.output => o, }
        top top_i;
        """
        trace, _ = run(source, {"i": [1, 2]}, ["o"])
        assert trace.output_values("o") == [1, 2]

    def test_state_machine_transitions(self):
        source = HEADER + """
        streamlet toggler_s { input: num in, output: num out, }
        external impl toggler_i of toggler_s {
            simulation {
                state mode = "even";
                on receive(input) {
                    if (mode == "even") {
                        send(output, input);
                        state mode = "odd";
                    } else {
                        state mode = "even";
                    }
                    ack(input);
                }
            }
        }
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance t(toggler_i), i => t.input, t.output => o, }
        top top_i;
        """
        trace, simulator = run(source, {"i": [10, 11, 12, 13]}, ["o"])
        assert trace.output_values("o") == [10, 12]
        modes = {value for _, name, value in simulator.components["t"].state_log if name == "mode"}
        assert modes == {"even", "odd"}
