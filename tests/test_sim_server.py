"""Differential tests of simulation as a service.

The subsystem's contract: a ``simulate_design`` verdict served over the
wire is byte-identical -- under ``json.dumps(..., sort_keys=True)`` -- to a
direct :func:`repro.sim.harness.run_simulation` over the same sources and
plan, *including* the structured error envelopes of designs that cannot
simulate.  On top of the differential: the ``watch_design`` subscription
flow over NDJSON, drain rejection, and the pooled (multi-process) path.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import TydiError
from repro.lang.compile import compile_sources
from repro.server import (
    CompileClient,
    CompileService,
    RemoteCompileError,
    ServerThread,
    http_post,
)
from repro.sim import SimulationPlan, run_simulation
from repro.testing import build_random_design


def sim_source(constant: int) -> str:
    """A simulable add-constant/accumulate pipeline (stdlib primitives only)."""
    return f"""
type num = Stream(Bit(32), d=1);
streamlet top_s {{ values: num in, total: num out, }}
impl top_i of top_s {{
    instance k(const_int_generator_i<type num, {constant}>),
    instance add(adder_i<type num, type num>),
    instance acc(sum_i<type num, type num>),
    values => add.lhs,
    k.output => add.rhs,
    add.output => acc.input,
    acc.output => total,
}}
top top_i;
"""


def fuzz_corpus() -> list[tuple[str, dict[str, str], object]]:
    """A deterministic fuzzed corpus: simulable pipelines under fuzzed
    plans, plus random chain designs whose external implementations have
    no behaviours (the structured-error half of the differential)."""
    rng = random.Random(20260808)
    corpus: list[tuple[str, dict[str, str], object]] = []
    for index in range(4):
        constant = rng.randint(1, 50)
        values = [rng.randint(0, 99) for _ in range(rng.randint(1, 6))]
        plan = {
            "stimuli": {"values": values},
            "channel_capacity": rng.choice([1, 2, 4]),
        }
        corpus.append((f"pipe{index}", {"pipe.td": sim_source(constant)}, plan))
    for index in range(3):
        sources = build_random_design(rng)
        files = {filename: text for text, filename in sources}
        corpus.append((f"chain{index}", files, None))
    return corpus


def direct_outcome(files: dict[str, str], plan: object) -> tuple[str, object]:
    """What a direct in-process simulation of the corpus entry produces:
    ``("ok", <canonical report JSON>)`` or ``("error", {type, stage,
    rendered})`` -- the two shapes the service must reproduce exactly."""
    sources = [(text, filename) for filename, text in sorted(files.items())]
    result = compile_sources(sources, cache=None)
    try:
        report = run_simulation(result.project, SimulationPlan.coerce(plan))
    except TydiError as exc:
        return "error", {
            "type": type(exc).__name__,
            "stage": exc.stage,
            "rendered": exc.render(),
        }
    return "ok", json.dumps(report.as_dict(), sort_keys=True)


def call(service: CompileService, method: str, **params):
    message = {"id": 1, "method": method}
    if params:
        message["params"] = params
    return service.handle_sync(message)


@pytest.fixture
def service():
    service = CompileService(jobs=2)
    yield service
    service.close()


class TestDifferential:
    @pytest.mark.parametrize(
        "name,files,plan",
        fuzz_corpus(),
        ids=[name for name, _, _ in fuzz_corpus()],
    )
    def test_served_verdict_matches_direct_simulation(
        self, service, name, files, plan
    ):
        kind, expected = direct_outcome(files, plan)
        assert call(service, "open_design", design=name, files=files)["ok"]
        params = {"design": name}
        if plan is not None:
            params["plan"] = plan
        envelope = call(service, "simulate_design", **params)
        if kind == "ok":
            assert envelope["ok"], envelope
            assert envelope["result"]["design"] == name
            assert (
                json.dumps(envelope["result"]["report"], sort_keys=True)
                == expected
            )
        else:
            assert not envelope["ok"]
            error = envelope["error"]
            assert error["type"] == expected["type"]
            assert error["stage"] == expected["stage"]
            assert error["rendered"] == expected["rendered"]

    def test_tpch_design_error_envelope_matches_direct(self, service):
        # TPC-H designs need data-bound reader behaviours, which cannot
        # travel in a plan: the served path must fail with exactly the
        # structured error a direct plan-driven run raises.
        from repro.queries import QUERIES

        query = QUERIES["q6"]
        files = {filename: text for text, filename in query.sources()}
        kind, expected = direct_outcome(files, None)
        assert kind == "error" and expected["stage"] == "simulate"
        assert call(service, "open_design", design="q6", files=files)["ok"]
        envelope = call(service, "simulate_design", design="q6")
        assert not envelope["ok"]
        assert envelope["error"]["type"] == expected["type"]
        assert envelope["error"]["rendered"] == expected["rendered"]

    def test_repeat_simulation_is_memoised_and_identical(self, service):
        call(service, "open_design", design="d", files={"d.td": sim_source(10)})
        plan = {"stimuli": {"values": [1, 2, 3]}}
        first = call(service, "simulate_design", design="d", plan=plan)
        second = call(service, "simulate_design", design="d", plan=plan)
        assert first["result"] == second["result"]

    def test_compile_error_surfaces_as_compile_stage(self, service):
        call(service, "open_design", design="broken", files={"x.td": "type ?! = ;"})
        envelope = call(service, "simulate_design", design="broken")
        assert not envelope["ok"]
        assert envelope["error"]["stage"] == "parse"


class TestServiceValidation:
    def test_plan_must_be_a_mapping(self, service):
        call(service, "open_design", design="d", files={"d.td": sim_source(1)})
        envelope = call(service, "simulate_design", design="d", plan=[1, 2])
        assert not envelope["ok"]
        assert envelope["error"]["stage"] == "server"

    def test_unknown_plan_key_is_an_input_error(self, service):
        call(service, "open_design", design="d", files={"d.td": sim_source(1)})
        envelope = call(
            service, "simulate_design", design="d", plan={"bogus": 1}
        )
        assert not envelope["ok"]
        assert "unknown simulation plan key" in envelope["error"]["rendered"]

    def test_watch_design_rejected_off_stream(self, service):
        # One-shot dispatch (and the HTTP front) cannot push event frames.
        call(service, "open_design", design="d", files={"d.td": sim_source(1)})
        envelope = call(service, "watch_design", design="d")
        assert not envelope["ok"]
        assert "streaming" in envelope["error"]["message"]

    def test_draining_service_rejects_simulation(self, service):
        call(service, "open_design", design="d", files={"d.td": sim_source(1)})
        service.draining.set()
        envelope = call(service, "simulate_design", design="d")
        assert not envelope["ok"]
        assert envelope["error"]["type"] == "TydiDrainingError"

    def test_ping_lists_the_new_methods(self, service):
        methods = call(service, "ping")["result"]["methods"]
        assert "simulate_design" in methods and "watch_design" in methods


class TestOverTheWire:
    PLAN = {"stimuli": {"values": [1, 2, 3]}}

    def test_ndjson_simulation_round_trip(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                result = client.simulate_design("d", self.PLAN)
                assert result["report"]["verdict"] == "ok"
                assert result["report"]["outputs"] == {"total": [36]}
                _, expected = direct_outcome({"d.td": sim_source(10)}, self.PLAN)
                assert json.dumps(result["report"], sort_keys=True) == expected

    def test_ndjson_bad_plan_raises_remote_error(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                with pytest.raises(RemoteCompileError) as excinfo:
                    client.simulate_design("d", {"bogus": 1})
                assert excinfo.value.remote_type == "TydiInputError"

    def test_http_post_simulation(self):
        with ServerThread() as server:
            host, port = server.address
            http_post(
                host,
                port,
                {
                    "id": 1,
                    "method": "open_design",
                    "params": {"design": "d", "files": {"d.td": sim_source(10)}},
                },
            )
            envelope = http_post(
                host,
                port,
                {
                    "id": 2,
                    "method": "simulate_design",
                    "params": {"design": "d", "plan": self.PLAN},
                },
            )
            assert envelope["ok"]
            assert envelope["result"]["report"]["outputs"] == {"total": [36]}

    def test_http_watch_design_is_rejected(self):
        with ServerThread() as server:
            host, port = server.address
            envelope = http_post(
                host, port, {"id": 1, "method": "watch_design", "params": {"design": "d"}}
            )
            assert not envelope["ok"]
            assert "streaming" in envelope["error"]["message"]


class TestWatchDesign:
    PLAN = {"stimuli": {"values": [1, 2, 3]}}

    def test_update_pushes_diagnostics_and_sim_delta(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                ack = client.watch_design("d", self.PLAN)
                assert ack["watching"] and ack["watch"] >= 1
                assert ack["queue_depth"] >= 1

                client.update_file("d", "d.td", sim_source(20))
                event = client.next_event(timeout=10)
                assert event is not None
                assert event["event"] == "design_update"
                assert event["design"] == "d"
                assert event["diagnostics"] == []
                assert event["sim_changed"] is True
                assert event["sim"]["error"] is None
                assert event["sim"]["report"]["outputs"] == {"total": [66]}

    def test_unchanged_simulation_is_not_repushed(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                client.watch_design("d", self.PLAN)
                client.update_file("d", "d.td", sim_source(20))
                first = client.next_event(timeout=10)
                assert first["sim_changed"] is True
                # A comment-only edit moves the fingerprint but not the
                # simulation outcome: the event must say so and carry no
                # report payload.
                client.update_file("d", "d.td", sim_source(20) + "// touched\n")
                second = client.next_event(timeout=10)
                assert second["sim_changed"] is False
                assert "sim" not in second

    def test_broken_edit_pushes_diagnostics_and_sim_error(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                client.watch_design("d", self.PLAN)
                client.update_file("d", "d.td", "type ?! = ;")
                event = client.next_event(timeout=10)
                assert event["diagnostics"], "broken design must diagnose"
                assert event["sim_changed"] is True
                assert event["sim"]["report"] is None
                assert event["sim"]["error"]["type"] == "TydiSyntaxError"

    def test_watch_requires_design_param(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                with pytest.raises(RemoteCompileError):
                    client.request("watch_design")
                with pytest.raises(RemoteCompileError):
                    client.request("watch_design", design="d", plan=[1])

    def test_unwatched_design_updates_push_nothing(self):
        with ServerThread() as server:
            with CompileClient(*server.address) as client:
                client.open_design("d", files={"d.td": sim_source(10)})
                client.open_design("other", files={"o.td": sim_source(5)})
                client.watch_design("d", self.PLAN)
                client.update_file("other", "o.td", sim_source(6))
                assert client.next_event(timeout=0.5) is None


class TestPooledSimulation:
    PLAN = {"stimuli": {"values": [1, 2, 3]}}

    def test_pool_mode_matches_direct(self, tmp_path):
        service = CompileService(workers=2, cache_dir=tmp_path)
        try:
            with ServerThread(service) as server:
                with CompileClient(*server.address) as client:
                    client.open_design("d", files={"d.td": sim_source(10)})
                    result = client.simulate_design("d", self.PLAN)
                    _, expected = direct_outcome(
                        {"d.td": sim_source(10)}, self.PLAN
                    )
                    assert (
                        json.dumps(result["report"], sort_keys=True) == expected
                    )
                    repeat = client.simulate_design("d", self.PLAN)
                    assert repeat == result
        finally:
            service.close()

    def test_pool_mode_watch_flow(self, tmp_path):
        service = CompileService(workers=2, cache_dir=tmp_path)
        try:
            with ServerThread(service) as server:
                with CompileClient(*server.address) as client:
                    client.open_design("d", files={"d.td": sim_source(10)})
                    client.watch_design("d", self.PLAN)
                    client.update_file("d", "d.td", sim_source(30))
                    event = client.next_event(timeout=15)
                    assert event is not None
                    assert event["sim"]["report"]["outputs"] == {"total": [96]}
        finally:
            service.close()
