"""Unit tests for automatic duplicator/voider insertion (Section IV-D)."""

import pytest

from repro.errors import TydiDRCError
from repro.lang.compile import compile_project


FANOUT_SOURCE = """
type num = Stream(Bit(32), d=1);
streamlet producer_s { a: num out, unused: num out, }
external impl producer_i of producer_s;
streamlet unary_s { value: num in, result: num out, }
external impl add10_i of unary_s;
external impl double_i of unary_s;
streamlet top_s { b0: num out, b1: num out, }
impl top_i of top_s {
    instance source(producer_i),
    instance adder(add10_i),
    instance multiplier(double_i),
    source.a => adder.value,
    source.a => multiplier.value,
    adder.result => b0,
    multiplier.result => b1,
}
top top_i;
"""


class TestDuplicatorInsertion:
    def test_figure4_example(self):
        result = compile_project(FANOUT_SOURCE, include_stdlib=False)
        assert result.sugaring.duplicators_inserted == 1
        assert result.sugaring.voiders_inserted == 1

    def test_duplicator_channel_count_matches_fanout(self):
        result = compile_project(FANOUT_SOURCE, include_stdlib=False)
        action = next(a for a in result.sugaring.actions if a.kind == "duplicator")
        assert action.channels == 2
        assert action.source == "source.a"

    def test_rewritten_connections_pass_drc(self):
        result = compile_project(FANOUT_SOURCE, include_stdlib=False)
        assert result.drc.passed()

    def test_duplicator_is_external_primitive(self):
        result = compile_project(FANOUT_SOURCE, include_stdlib=False)
        top = result.project.implementation("top_i")
        inserted = [i for i in top.instances if i.metadata.get("synthesized")]
        assert len(inserted) == 2
        for instance in inserted:
            inner = result.project.implementation(instance.implementation)
            assert inner.external
            assert inner.metadata["primitive"] in ("duplicator", "voider")

    def test_without_sugaring_drc_fails(self):
        with pytest.raises(TydiDRCError):
            compile_project(FANOUT_SOURCE, include_stdlib=False, sugaring=False)

    def test_same_type_fanouts_share_primitive(self):
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet src_s { a: num out, b: num out, }
        external impl src_i of src_s;
        streamlet sink_s { x: num in, }
        external impl sink_i of sink_s;
        streamlet top_s { }
        impl top_i of top_s {
            instance s(src_i),
            instance k1(sink_i), instance k2(sink_i),
            instance k3(sink_i), instance k4(sink_i),
            s.a => k1.x, s.a => k2.x,
            s.b => k3.x, s.b => k4.x,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert result.sugaring.duplicators_inserted == 2
        duplicator_impls = {
            i.implementation
            for i in result.project.implementation("top_i").instances
            if i.metadata.get("primitive") == "duplicator"
        }
        # Two fan-outs of the same type and width share one concrete primitive.
        assert len(duplicator_impls) == 1


class TestVoiderInsertion:
    def test_unused_reader_outputs_voided(self):
        source = """
        type num = Stream(Bit(16), d=1);
        streamlet wide_s { a: num out, b: num out, c: num out, }
        external impl wide_i of wide_s;
        streamlet sink_s { x: num in, }
        external impl sink_i of sink_s;
        streamlet top_s { }
        impl top_i of top_s {
            instance w(wide_i),
            instance k(sink_i),
            w.a => k.x,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert result.sugaring.voiders_inserted == 2
        assert result.drc.passed()

    def test_unused_self_input_voided(self):
        source = """
        type num = Stream(Bit(16), d=1);
        streamlet top_s { used: num in, ignored: num in, out_p: num out, }
        impl top_i of top_s { used => out_p, }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        assert result.sugaring.voiders_inserted == 1
        assert result.drc.passed()

    def test_report_per_implementation(self):
        result = compile_project(FANOUT_SOURCE, include_stdlib=False)
        actions = result.sugaring.for_implementation("top_i")
        assert len(actions) == 2
        assert "duplicator" in result.sugaring.summary()


class TestSugaringOnQueries:
    def test_q6_uses_sugaring_heavily(self, compiled_queries):
        """Q6 leaves 10 unused lineitem columns and two fanned-out columns."""
        report = compiled_queries["q6"].sugaring
        assert report.voiders_inserted >= 8
        assert report.duplicators_inserted >= 2

    def test_no_sugar_variant_needs_none(self, compiled_queries):
        assert compiled_queries["q1_no_sugar"].sugaring is None
