"""Unit tests for evaluation/expansion: templates, for/if/assert, arrays."""

import pytest

from repro.errors import (
    TydiAssertionError,
    TydiEvaluationError,
    TydiNameError,
    TydiTypeError,
)
from repro.lang.compile import compile_project
from repro.spec.logical_types import Stream


def compile_ok(source, **kwargs):
    kwargs.setdefault("include_stdlib", False)
    return compile_project(source, **kwargs)


BASIC_TYPES = """
type byte_stream = Stream(Bit(8), d=1);
"""


class TestConstantsAndTypes:
    def test_constant_forward_reference(self):
        source = """
        const total = half * 2;
        const half = 4;
        type t = Stream(Bit(total), d=1);
        streamlet s { p: t in, q: t out, }
        impl i of s { p => q, }
        top i;
        """
        result = compile_ok(source)
        port = result.project.streamlet("s").port("p")
        assert port.logical_type.data_width() == 8

    def test_constant_cycle_detected(self):
        source = "const a = b;\nconst b = a;\nstreamlet s { }\nimpl i of s {}\ntop i;"
        with pytest.raises(TydiEvaluationError):
            compile_ok(source)

    def test_duplicate_declaration_rejected(self):
        source = "const x = 1;\nconst x = 2;"
        with pytest.raises(TydiEvaluationError):
            compile_ok(source)

    def test_named_group_interned(self):
        source = """
        Group Pixel { r: Bit(8), g: Bit(8), b: Bit(8), }
        type pix_stream = Stream(Pixel, d=1);
        streamlet s { i: pix_stream in, o: pix_stream out, }
        impl impl_i of s { i => o, }
        top impl_i;
        """
        result = compile_ok(source)
        streamlet = result.project.streamlet("s")
        assert streamlet.port("i").logical_type is streamlet.port("o").logical_type
        assert streamlet.port("i").logical_type.data_width() == 24

    def test_cyclic_type_detected(self):
        source = "type a = b;\ntype b = a;\nstreamlet s { p: a in, }\nimpl i of s {}\ntop i;"
        with pytest.raises(TydiTypeError):
            compile_ok(source, run_drc=False)

    def test_bit_width_from_expression(self):
        source = """
        const digits = 15;
        type decimal_t = Stream(Bit(ceil(log2(10 ^ digits - 1))), d=1);
        streamlet s { a: decimal_t in, b: decimal_t out, }
        impl i of s { a => b, }
        top i;
        """
        result = compile_ok(source)
        assert result.project.streamlet("s").port("a").logical_type.data_width() == 50

    def test_undefined_type_reported(self):
        source = "streamlet s { p: mystery_t in, }\nimpl i of s {}\ntop i;"
        with pytest.raises(TydiNameError):
            compile_ok(source, run_drc=False)


class TestTemplates:
    PASSTHROUGH = BASIC_TYPES + """
    streamlet pass_s<t: type> { input: t in, output: t out, }
    external impl pass_i<t: type> of pass_s<type t>;
    streamlet top_s { i: byte_stream in, o: byte_stream out, }
    impl top_i of top_s {
        instance p(pass_i<type byte_stream>),
        i => p.input,
        p.output => o,
    }
    top top_i;
    """

    def test_template_instantiation(self):
        result = compile_ok(self.PASSTHROUGH)
        names = list(result.project.implementations)
        assert any(name.startswith("pass_i") for name in names)

    def test_same_arguments_share_instance(self):
        source = BASIC_TYPES + """
        streamlet pass_s<t: type> { input: t in, output: t out, }
        external impl pass_i<t: type> of pass_s<type t>;
        streamlet top_s { i: byte_stream in, o: byte_stream out, o2: byte_stream out, }
        impl top_i of top_s {
            instance a(pass_i<type byte_stream>),
            instance b(pass_i<type byte_stream>),
            i => a.input,
            a.output => b.input,
            b.output => o,
            a.output => o2,
        }
        top top_i;
        """
        result = compile_ok(source, sugaring=True)
        pass_impls = [n for n in result.project.implementations if n.startswith("pass_i")]
        assert len(pass_impls) == 1  # both instances share the same concrete impl

    def test_different_arguments_distinct_instances(self):
        source = """
        type a_t = Stream(Bit(8), d=1);
        type b_t = Stream(Bit(16), d=1);
        streamlet pass_s<t: type> { input: t in, output: t out, }
        external impl pass_i<t: type> of pass_s<type t>;
        streamlet top_s { ia: a_t in, oa: a_t out, ib: b_t in, ob: b_t out, }
        impl top_i of top_s {
            instance pa(pass_i<type a_t>),
            instance pb(pass_i<type b_t>),
            ia => pa.input, pa.output => oa,
            ib => pb.input, pb.output => ob,
        }
        top top_i;
        """
        result = compile_ok(source)
        pass_impls = [n for n in result.project.implementations if n.startswith("pass_i")]
        assert len(pass_impls) == 2

    def test_wrong_argument_count(self):
        source = BASIC_TYPES + """
        streamlet pass_s<t: type> { input: t in, output: t out, }
        external impl pass_i<t: type> of pass_s<type t>;
        streamlet top_s { i: byte_stream in, o: byte_stream out, }
        impl top_i of top_s { instance p(pass_i<type byte_stream, 3>), i => p.input, p.output => o, }
        top top_i;
        """
        with pytest.raises(TydiEvaluationError):
            compile_ok(source)

    def test_wrong_argument_kind(self):
        source = BASIC_TYPES + """
        streamlet rep_s<n: int> { input: byte_stream in, output: byte_stream out [n], }
        external impl rep_i<n: int> of rep_s<n>;
        streamlet top_s { i: byte_stream in, o: byte_stream out, }
        impl top_i of top_s { instance r(rep_i<"four">), i => r.input, r.output[0] => o, }
        top top_i;
        """
        with pytest.raises(TydiTypeError):
            compile_ok(source)

    def test_impl_argument_must_derive_from_streamlet(self):
        source = BASIC_TYPES + """
        streamlet unit_s<t: type> { input: t in, output: t out, }
        streamlet other_s { x: byte_stream in, }
        external impl wrong_i of other_s;
        streamlet wrap_s { i: byte_stream in, o: byte_stream out, }
        impl wrap_i<pu: impl of unit_s> of wrap_s {
            instance u(pu),
            i => u.input,
            u.output => o,
        }
        impl top_i of wrap_s {
            instance w(wrap_i<impl wrong_i>),
            i => w.i,
            w.o => o,
        }
        top top_i;
        """
        with pytest.raises(TydiTypeError):
            compile_ok(source)

    def test_recursive_instantiation_detected(self):
        source = BASIC_TYPES + """
        streamlet loop_s { i: byte_stream in, o: byte_stream out, }
        impl loop_i of loop_s { instance inner(loop_i), i => inner.i, inner.o => o, }
        top loop_i;
        """
        with pytest.raises(TydiEvaluationError):
            compile_ok(source)


class TestPortAndInstanceArrays:
    def test_port_array_expansion(self):
        source = BASIC_TYPES + """
        streamlet fan_s<n: int> { input: byte_stream in, output: byte_stream out [n], }
        external impl fan_i<n: int> of fan_s<n>;
        streamlet top_s { i: byte_stream in, a: byte_stream out, b: byte_stream out, c: byte_stream out, }
        impl top_i of top_s {
            instance f(fan_i<3>),
            i => f.input,
            f.output[0] => a,
            f.output[1] => b,
            f.output[2] => c,
        }
        top top_i;
        """
        result = compile_ok(source)
        fan = next(s for name, s in result.project.streamlets.items() if name.startswith("fan_s"))
        assert [p.name for p in fan.outputs()] == ["output_0", "output_1", "output_2"]

    def test_instance_array_expansion(self):
        source = BASIC_TYPES + """
        streamlet unit_s { input: byte_stream in, output: byte_stream out, }
        external impl unit_i of unit_s;
        streamlet top_s { i: byte_stream in, o: byte_stream out, }
        impl top_i of top_s {
            instance stage(unit_i) [3],
            i => stage[0].input,
            stage[0].output => stage[1].input,
            stage[1].output => stage[2].input,
            stage[2].output => o,
        }
        top top_i;
        """
        result = compile_ok(source)
        top = result.project.implementation("top_i")
        assert [inst.name for inst in top.instances] == ["stage_0", "stage_1", "stage_2"]

    def test_negative_array_size_rejected(self):
        source = BASIC_TYPES + """
        streamlet top_s { i: byte_stream in, }
        streamlet unit_s { input: byte_stream in, }
        external impl unit_i of unit_s;
        impl top_i of top_s { instance u(unit_i) [0 - 2], i => u.input, }
        top top_i;
        """
        with pytest.raises(TydiEvaluationError):
            compile_ok(source)


class TestGenerativeSyntax:
    def test_for_loop_unrolls_connections(self):
        source = BASIC_TYPES + """
        streamlet fan_s<n: int> { input: byte_stream in, output: byte_stream out [n], }
        external impl fan_i<n: int> of fan_s<n>;
        streamlet join_s<n: int> { input: byte_stream in [n], output: byte_stream out, }
        external impl join_i<n: int> of join_s<n>;
        const channels = 4;
        streamlet top_s { i: byte_stream in, o: byte_stream out, }
        impl top_i of top_s {
            instance f(fan_i<channels>),
            instance j(join_i<channels>),
            i => f.input,
            j.output => o,
            for k in 0->channels {
                f.output[k] => j.input[k],
            }
        }
        top top_i;
        """
        result = compile_ok(source)
        top = result.project.implementation("top_i")
        assert len(top.connections) == 2 + 4

    def test_for_loop_over_string_array_instantiates_per_value(self):
        source = BASIC_TYPES + """
        const names = ["alpha", "beta", "gamma"];
        streamlet tag_s { output: byte_stream out, }
        external impl tag_i<label: string> of tag_s;
        streamlet sink_s<n: int> { input: byte_stream in [n], }
        external impl sink_i<n: int> of sink_s<n>;
        streamlet top_s { }
        impl top_i of top_s {
            instance collect(sink_i<3>),
            for idx in 0->len(names) {
                instance gen(tag_i<names[idx]>),
                gen.output => collect.input[idx],
            }
        }
        top top_i;
        """
        result = compile_ok(source)
        top = result.project.implementation("top_i")
        generated = [inst.name for inst in top.instances if inst.name.startswith("gen")]
        assert generated == ["gen_0", "gen_1", "gen_2"]
        # Three distinct concrete tag_i implementations (one per string).
        tags = [n for n in result.project.implementations if n.startswith("tag_i")]
        assert len(tags) == 3

    def test_if_true_expands_branch(self):
        source = BASIC_TYPES + """
        const wide = true;
        streamlet unit_s { input: byte_stream in, output: byte_stream out, }
        external impl fast_i of unit_s;
        external impl slow_i of unit_s;
        streamlet top_s { i: byte_stream in, o: byte_stream out, }
        impl top_i of top_s {
            if (wide) {
                instance u(fast_i),
                i => u.input,
                u.output => o,
            } else {
                instance u(slow_i),
                i => u.input,
                u.output => o,
            }
        }
        top top_i;
        """
        result = compile_ok(source)
        top = result.project.implementation("top_i")
        assert top.instances[0].implementation == "fast_i"

    def test_if_condition_must_be_boolean(self):
        source = BASIC_TYPES + """
        streamlet top_s { }
        impl top_i of top_s { if (3) { } }
        top top_i;
        """
        with pytest.raises(TydiTypeError):
            compile_ok(source)

    def test_assert_pass_and_fail(self):
        passing = "streamlet s {}\nimpl i of s { assert(2 > 1), }\ntop i;"
        compile_ok(passing)
        failing = 'streamlet s {}\nimpl i of s { assert(1 > 2, "impossible"), }\ntop i;'
        with pytest.raises(TydiAssertionError) as excinfo:
            compile_ok(failing)
        assert "impossible" in str(excinfo.value)

    def test_local_const_shadowing(self):
        source = BASIC_TYPES + """
        const n = 2;
        streamlet unit_s { input: byte_stream in, }
        external impl unit_i of unit_s;
        streamlet top_s { i: byte_stream in, }
        impl top_i of top_s {
            const n = 1,
            instance sinks(unit_i) [n],
            i => sinks[0].input,
        }
        top top_i;
        """
        result = compile_ok(source)
        assert len(result.project.implementation("top_i").instances) == 1

    def test_for_iterable_must_be_array(self):
        source = "streamlet s {}\nimpl i of s { for x in 5 { } }\ntop i;"
        with pytest.raises(TydiTypeError):
            compile_ok(source)


class TestPaperParallelizeExample:
    def test_parallelize_with_adder(self):
        """The worked example of Section IV-B: 8-way parallelised adder."""
        source = """
        Group AdderInput { data0: Bit(32), data1: Bit(32), }
        type Input = Stream(AdderInput, d=1);
        Group Bit32_result { data: Bit(32), overflow: Bit(1), }
        type Result = Stream(Bit32_result, d=1);
        external impl adder_32 of process_unit_s<type Input, type Result>;
        streamlet top_s { input: Input in, output: Result out, }
        impl top_i of top_s {
            instance par(parallelize_i<type Input, type Result, impl adder_32, 8>),
            input => par.input,
            par.output => output,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=True)
        parallelize = next(
            impl
            for name, impl in result.project.implementations.items()
            if name.startswith("parallelize_i")
        )
        # 1 demux + 1 mux + 8 processing units.
        assert len(parallelize.instances) == 10
        pu_instances = [i for i in parallelize.instances if i.name.startswith("pu")]
        assert len(pu_instances) == 8
        assert all(i.implementation == "adder_32" for i in pu_instances)
        # demux/mux connections: 2 boundary + 2 per channel.
        assert len(parallelize.connections) == 2 + 16
