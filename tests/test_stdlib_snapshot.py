"""The precompiled stdlib AST snapshot: freshness and fallback behaviour.

The invariant under test: :func:`repro.stdlib.snapshot.load_stdlib_unit`
NEVER raises -- a missing, corrupt, truncated or stale snapshot silently
falls back to a live parse (returning ``None`` and bumping the fallback
counter), because a broken snapshot may cost milliseconds, not a compile.
"""

from __future__ import annotations

import pickle

import pytest

from repro.lang.ast import SourceUnit
from repro.lang.parser import parse_source
from repro.stdlib import snapshot as snap
from repro.stdlib.source import STDLIB_SOURCE


@pytest.fixture(autouse=True)
def _clean_counters():
    snap.reset_counters()
    yield
    snap.reset_counters()


class TestCommittedSnapshot:
    def test_committed_snapshot_is_fresh(self):
        """The in-tree snapshot must match the current stdlib + version.

        If this fails after editing the stdlib or the AST classes, rebuild
        with ``python -m repro.stdlib.snapshot`` and commit the result.
        """
        assert snap.snapshot_path().is_file(), (
            "snapshot missing; run `python -m repro.stdlib.snapshot`"
        )
        unit = snap.load_stdlib_unit()
        assert unit is not None, (
            f"committed snapshot is stale ({snap.snapshot_counters()['last_fallback']}); "
            "run `python -m repro.stdlib.snapshot` and commit the result"
        )
        assert snap.snapshot_counters()["hits"] == 1

    def test_snapshot_equals_live_parse(self):
        unit = snap.load_stdlib_unit()
        assert unit == parse_source(STDLIB_SOURCE, "std.td")

    def test_compile_uses_snapshot_ast(self):
        from repro.lang import compile as compile_mod
        from repro.lang.compile import CompileOptions, run_pipeline

        compile_mod._parsed_stdlib.cache_clear()
        result = run_pipeline([("streamlet s { }", "x.td")], CompileOptions())
        compile_mod._parsed_stdlib.cache_clear()
        assert snap.snapshot_counters()["hits"] >= 1
        assert not result.diagnostics.has_errors()


class TestFallbacks:
    def test_missing_snapshot_falls_back(self, tmp_path):
        assert snap.load_stdlib_unit(tmp_path / "nope.pkl") is None
        counters = snap.snapshot_counters()
        assert counters["fallbacks"] == 1
        assert counters["last_fallback"] == "missing"

    def test_corrupt_bytes_fall_back(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"this is not a pickle")
        assert snap.load_stdlib_unit(path) is None
        assert snap.snapshot_counters()["last_fallback"] == "corrupt"

    def test_truncated_snapshot_falls_back(self, tmp_path):
        good = snap.build_snapshot(tmp_path / "good.pkl")
        truncated = tmp_path / "short.pkl"
        truncated.write_bytes(good.read_bytes()[:50])
        assert snap.load_stdlib_unit(truncated) is None
        assert snap.snapshot_counters()["last_fallback"] == "corrupt"

    def test_wrong_payload_shape_falls_back(self, tmp_path):
        path = tmp_path / "shape.pkl"
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert snap.load_stdlib_unit(path) is None
        assert snap.snapshot_counters()["last_fallback"] == "corrupt"

    def test_stale_stamp_falls_back(self, tmp_path):
        path = tmp_path / "stale.pkl"
        stamp = snap._stamp(STDLIB_SOURCE)
        stamp["compiler"] = "0.0.0-ancient"
        unit = parse_source(STDLIB_SOURCE, "std.td")
        path.write_bytes(pickle.dumps({"stamp": stamp, "unit": unit}))
        assert snap.load_stdlib_unit(path) is None
        assert snap.snapshot_counters()["last_fallback"] == "stale"

    def test_stamp_with_non_unit_payload_falls_back(self, tmp_path):
        path = tmp_path / "nounit.pkl"
        path.write_bytes(pickle.dumps({"stamp": snap._stamp(STDLIB_SOURCE), "unit": 42}))
        assert snap.load_stdlib_unit(path) is None
        assert snap.snapshot_counters()["last_fallback"] == "corrupt"

    def test_compile_survives_broken_snapshot(self, monkeypatch, tmp_path):
        """End to end: a corrupt snapshot must not break compilation."""
        from repro.lang import compile as compile_mod
        from repro.lang.compile import CompileOptions, run_pipeline

        broken = tmp_path / "broken.pkl"
        broken.write_bytes(b"\x80garbage")
        monkeypatch.setattr(snap, "snapshot_path", lambda: broken)
        compile_mod._parsed_stdlib.cache_clear()
        try:
            result = run_pipeline([("streamlet s { }", "x.td")], CompileOptions())
        finally:
            compile_mod._parsed_stdlib.cache_clear()
        assert not result.diagnostics.has_errors()
        counters = snap.snapshot_counters()
        assert counters["fallbacks"] == 1
        assert counters["hits"] == 0


class TestBuildSnapshot:
    def test_build_produces_loadable_snapshot(self, tmp_path):
        path = snap.build_snapshot(tmp_path / "fresh.pkl")
        unit = snap.load_stdlib_unit(path)
        assert isinstance(unit, SourceUnit)
        assert snap.snapshot_counters()["hits"] == 1

    def test_build_is_atomic(self, tmp_path):
        path = snap.build_snapshot(tmp_path / "atomic.pkl")
        assert not path.with_suffix(".tmp").exists()
