"""Tests for the content-addressed compilation cache."""

import pickle

import pytest

from repro.lang import compile_sources
from repro.pipeline import (
    CompilationCache,
    fingerprint_sources,
    normalize_sources,
)

SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""

OTHER_SOURCE = SOURCE.replace("Bit(8)", "Bit(16)")


def _default_options() -> dict:
    """The options dict compile_sources keys a default-argument call with."""
    return {
        "top": None,
        "top_args": (),
        "include_stdlib": True,
        "sugaring": True,
        "run_drc": True,
        "strict_drc": True,
        "project_name": "design",
    }


class TestFingerprint:
    def test_deterministic(self):
        a = fingerprint_sources([(SOURCE, "a.td")], {"top": None})
        b = fingerprint_sources([(SOURCE, "a.td")], {"top": None})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_source_text_changes_key(self):
        a = fingerprint_sources([(SOURCE, "a.td")])
        b = fingerprint_sources([(OTHER_SOURCE, "a.td")])
        assert a != b

    def test_filename_changes_key(self):
        assert fingerprint_sources([(SOURCE, "a.td")]) != fingerprint_sources([(SOURCE, "b.td")])

    def test_options_change_key(self):
        a = fingerprint_sources([(SOURCE, "a.td")], {"sugaring": True})
        b = fingerprint_sources([(SOURCE, "a.td")], {"sugaring": False})
        assert a != b

    def test_option_order_is_irrelevant(self):
        a = fingerprint_sources([(SOURCE, "a.td")], {"top": "x", "sugaring": True})
        b = fingerprint_sources([(SOURCE, "a.td")], {"sugaring": True, "top": "x"})
        assert a == b

    def test_normalize_bare_strings(self):
        assert normalize_sources([SOURCE]) == ((SOURCE, "source_0.td"),)
        # ... and the bare-string form hashes like its normalised twin.
        assert fingerprint_sources([SOURCE]) == fingerprint_sources([(SOURCE, "source_0.td")])

    def test_stage_schema_version_changes_key(self, monkeypatch):
        """Keys from a different per-stage layout can never collide.

        ``key_for`` mixes ``STAGE_SCHEMA_VERSION`` into the salt, so entries
        written by the PR-1 whole-result-only layout (or any future layout)
        address different files and are simply never deserialised.
        """
        from repro.pipeline import cache as cache_module

        current = fingerprint_sources([(SOURCE, "a.td")])
        monkeypatch.setattr(cache_module, "STAGE_SCHEMA_VERSION", cache_module.STAGE_SCHEMA_VERSION + 1)
        assert fingerprint_sources([(SOURCE, "a.td")]) != current

    def test_cache_format_version_changes_key(self, monkeypatch):
        from repro.pipeline import cache as cache_module

        current = fingerprint_sources([(SOURCE, "a.td")])
        monkeypatch.setattr(cache_module, "CACHE_VERSION", cache_module.CACHE_VERSION + 1)
        assert fingerprint_sources([(SOURCE, "a.td")]) != current


class TestCompileSourcesCacheHook:
    def test_miss_then_hit(self):
        cache = CompilationCache()
        first = compile_sources([(SOURCE, "a.td")], cache=cache)
        second = compile_sources([(SOURCE, "a.td")], cache=cache)
        assert second is first  # in-memory hit returns the stored artefact
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_source_change_invalidates(self):
        cache = CompilationCache()
        first = compile_sources([(SOURCE, "a.td")], cache=cache)
        changed = compile_sources([(OTHER_SOURCE, "a.td")], cache=cache)
        assert changed is not first
        assert cache.stats.misses == 2

    def test_option_change_invalidates(self):
        cache = CompilationCache()
        compile_sources([(SOURCE, "a.td")], cache=cache)
        no_sugar = compile_sources([(SOURCE, "a.td")], sugaring=False, cache=cache)
        assert cache.stats.misses == 2
        assert "sugaring" not in no_sugar.stage_names()

    def test_cached_result_ir_identical(self):
        cache = CompilationCache()
        cold = compile_sources([(SOURCE, "a.td")], cache=cache)
        warm = compile_sources([(SOURCE, "a.td")], cache=cache)
        assert warm.ir_text() == cold.ir_text()


class TestLru:
    def test_eviction_of_least_recently_used(self):
        cache = CompilationCache(max_entries=2)
        r = compile_sources([SOURCE])
        cache.put("k1", r)
        cache.put("k2", r)
        assert cache.get("k1") is r  # k1 is now most recent
        cache.put("k3", r)  # evicts k2
        assert cache.get("k2") is None
        assert cache.get("k1") is r
        assert cache.get("k3") is r
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            CompilationCache(max_entries=0)


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        cache_dir = tmp_path / ".tydi-cache"
        writer = CompilationCache(cache_dir=cache_dir)
        cold = compile_sources([(SOURCE, "a.td")], cache=writer)
        assert writer.stats.disk_stores == 1
        assert list(cache_dir.glob("*.pkl"))

        reader = CompilationCache(cache_dir=cache_dir)
        warm = compile_sources([(SOURCE, "a.td")], cache=reader)
        assert reader.stats.disk_hits == 1
        assert warm is not cold  # pickle round-trip, not an alias
        assert warm.ir_text() == cold.ir_text()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CompilationCache(cache_dir=tmp_path)
        compile_sources([(SOURCE, "a.td")], cache=cache)
        entry = next(tmp_path.glob("*.pkl"))
        entry.write_bytes(b"definitely not a pickle")

        fresh = CompilationCache(cache_dir=tmp_path)
        result = compile_sources([(SOURCE, "a.td")], cache=fresh)
        assert result is not None
        assert fresh.stats.disk_errors == 1
        assert fresh.stats.misses == 1
        # The corrupt artefact was dropped and replaced by the recompile.
        reloaded = pickle.loads(next(tmp_path.glob("*.pkl")).read_bytes())
        assert reloaded.ir_text() == result.ir_text()

    def test_old_layout_entry_is_never_deserialized(self, tmp_path, monkeypatch):
        """A PR-1-era store (older stage schema) misses instead of loading.

        The old entry addresses a different key, so the new layout recompiles
        and stores under its own key; the stale artefact is left untouched
        until disk eviction (or a manual clear) reaps it -- it is never
        loaded into the new layout.
        """
        from repro.pipeline import cache as cache_module

        # Write an artefact under the key an *older* schema would compute --
        # with a payload that would blow up if it were ever unpickled.
        monkeypatch.setattr(cache_module, "STAGE_SCHEMA_VERSION", 0)
        old_key = fingerprint_sources([(SOURCE, "a.td")], _default_options())
        monkeypatch.undo()
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / f"{old_key}.pkl").write_bytes(b"stale layout, do not load")

        cache = CompilationCache(cache_dir=tmp_path)
        result = compile_sources([(SOURCE, "a.td")], cache=cache)
        assert result.project.top == "echo_i"
        assert cache.stats.disk_errors == 0  # the stale entry was never opened
        assert cache.stats.misses == 1
        assert (tmp_path / f"{old_key}.pkl").exists()

    def test_unreadable_stage_entry_is_a_miss(self, tmp_path):
        """Corrupt per-stage artefacts recover exactly like whole-result ones."""
        cache = CompilationCache(cache_dir=tmp_path)
        compile_sources([(SOURCE, "a.td")], cache=cache)
        stage_pkls = list((tmp_path / "stages").glob("*.pkl"))
        assert stage_pkls
        for path in stage_pkls:
            path.write_bytes(b"truncated garbage")
        for path in tmp_path.glob("*.pkl"):
            path.unlink()  # force a whole-result miss into the staged path

        fresh = CompilationCache(cache_dir=tmp_path)
        result = compile_sources([(SOURCE, "a.td")], cache=fresh)
        assert result.project.top == "echo_i"
        assert fresh.stages.stats.disk_errors >= 1

    def test_clear_disk(self, tmp_path):
        cache = CompilationCache(cache_dir=tmp_path)
        compile_sources([(SOURCE, "a.td")], cache=cache)
        cache.clear(disk=True)
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.pkl"))

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = CompilationCache(max_entries=1, cache_dir=tmp_path)
        a = compile_sources([(SOURCE, "a.td")], cache=cache)
        compile_sources([(OTHER_SOURCE, "b.td")], cache=cache)  # evicts a from memory
        assert cache.stats.evictions == 1
        again = compile_sources([(SOURCE, "a.td")], cache=cache)
        assert cache.stats.disk_hits == 1
        assert again.ir_text() == a.ir_text()


class TestStats:
    def test_hit_rate(self):
        cache = CompilationCache()
        compile_sources([SOURCE], cache=cache)
        compile_sources([SOURCE], cache=cache)
        compile_sources([SOURCE], cache=cache)
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate() == pytest.approx(2 / 3)
        assert cache.stats.as_dict()["hits"] == 2


class TestClearRecursive:
    def test_clear_disk_removes_stage_artefacts_without_stage_caching(self, tmp_path):
        """Regression: clear(disk=True) with stage_caching=False used to glob
        only top-level *.pkl, orphaning stages/ artefacts on disk (where they
        still counted against max_disk_bytes)."""
        warm = CompilationCache(cache_dir=tmp_path)
        compile_sources([(SOURCE, "a.td")], cache=warm)
        assert list((tmp_path / "stages").glob("*.pkl"))

        cache = CompilationCache(cache_dir=tmp_path, stage_caching=False)
        cache.clear(disk=True)
        assert not list(tmp_path.rglob("*.pkl"))

    def test_clear_disk_removes_leaked_tmp_files(self, tmp_path):
        (tmp_path / "stages").mkdir()
        (tmp_path / "dead.pkl.tmp").write_bytes(b"x")
        (tmp_path / "stages" / "dead.pkl.tmp").write_bytes(b"x")
        cache = CompilationCache(cache_dir=tmp_path)
        cache.clear(disk=True)
        assert not list(tmp_path.rglob("*.tmp"))


class TestTmpSweep:
    def test_stale_tmp_files_are_swept(self, tmp_path):
        """Regression: a writer SIGKILLed mid-atomic_write_bytes leaks a
        *.tmp file that eviction neither counted nor ever deleted."""
        import os

        from repro.pipeline.cache import evict_lru_files

        stale = tmp_path / "orphan.pkl.tmp"
        stale.write_bytes(b"x" * 100)
        old = stale.stat().st_mtime - 3600
        os.utime(stale, (old, old))
        evicted = evict_lru_files(tmp_path, max_bytes=10_000)
        assert evicted == 0  # GC, not a budget eviction
        assert not stale.exists()

    def test_fresh_tmp_files_survive_but_count_against_budget(self, tmp_path):
        """An in-flight writer's .tmp must not be deleted under it, but its
        bytes are real disk usage the budget has to see."""
        from repro.pipeline.cache import evict_lru_files

        fresh = tmp_path / "inflight.pkl.tmp"
        fresh.write_bytes(b"x" * 600)
        victim = tmp_path / "old.pkl"
        victim.write_bytes(b"y" * 600)
        evicted = evict_lru_files(tmp_path, max_bytes=1000)
        assert fresh.exists()
        assert not victim.exists()
        assert evicted == 1


class TestCanonicalOptions:
    def test_dict_valued_option_order_invariant(self):
        """Regression: repr() of dicts leaks key insertion order into the
        fingerprint, so semantically identical options spuriously missed."""
        a = fingerprint_sources(
            [(SOURCE, "a.td")],
            {"backend_options": {"vhdl": {"indent": 2, "header": True}}},
        )
        b = fingerprint_sources(
            [(SOURCE, "a.td")],
            {"backend_options": {"vhdl": {"header": True, "indent": 2}}},
        )
        assert a == b

    def test_dict_content_still_changes_key(self):
        a = fingerprint_sources([(SOURCE, "a.td")], {"backend_options": {"vhdl": {"indent": 2}}})
        b = fingerprint_sources([(SOURCE, "a.td")], {"backend_options": {"vhdl": {"indent": 4}}})
        assert a != b

    def test_evaluate_key_order_invariant(self):
        from repro.pipeline.stages import StageCache

        stages = StageCache()
        a = stages.evaluate_key([(SOURCE, "a.td")], {"top_args": {"x": 1, "y": 2}})
        b = stages.evaluate_key([(SOURCE, "a.td")], {"top_args": {"y": 2, "x": 1}})
        assert a == b

    def test_canonical_repr_shapes(self):
        from repro.pipeline.cache import canonical_option_repr

        assert canonical_option_repr({"b": 1, "a": 2}) == canonical_option_repr({"a": 2, "b": 1})
        assert canonical_option_repr((1,)) == "(1,)"
        assert canonical_option_repr([1, 2]) == "[1, 2]"
        assert canonical_option_repr({3, 1, 2}) == canonical_option_repr({2, 1, 3})
        # Ordered containers stay order-sensitive: (1, 2) is not (2, 1).
        assert canonical_option_repr((1, 2)) != canonical_option_repr((2, 1))
