"""Differential harness: the staged/cached pipeline == a cold monolithic compile.

The property that makes every future cache change safe: for any design and
any warm/cold cache state, compiling through the per-stage cache
(:class:`repro.pipeline.stages.StageCache`) must produce **byte-identical**
Tydi-IR, diagnostics and stage logs to a cold monolithic
``compile_sources`` run on the same inputs.

The harness generates randomized multi-file designs
(:func:`tests.conftest.build_random_design`), applies randomized
single-file edits (:func:`tests.conftest.mutate_design`), and checks the
equivalence across 50+ seeded cases, in every cache temperature that can
occur in practice:

* cold stage cache (first compile of a design),
* warm per-file ASTs + warm evaluate snapshot (recompile, nothing changed
  at whole-result level but the whole-result tier was bypassed),
* warm ASTs for N-1 files after a one-file edit (the motivating case),
* warm evaluate snapshot reused across downstream-option changes
  (``run_drc`` / ``sugaring`` flipped).
"""

from __future__ import annotations

import random

import pytest

from repro.testing import build_random_design, mutate_design

from repro.lang.compile import compile_sources
from repro.pipeline import CompilationCache, StageCache


def observable(result) -> dict:
    """Everything a compilation's consumers can observe, as comparable bytes."""
    return {
        "ir": result.ir_text(),
        "diagnostics": [str(d) for d in result.diagnostics],
        "stages": [str(s) for s in result.stages],
        "stage_names": result.stage_names(),
        "statistics": result.project.statistics(),
        "sugaring": result.sugaring.summary() if result.sugaring else None,
        "drc": result.drc.summary() if result.drc else None,
        "units": [(u.filename, u.package, len(u.declarations)) for u in result.units],
    }


def assert_equivalent(staged, monolithic, context: str) -> None:
    staged_view, mono_view = observable(staged), observable(monolithic)
    for field in staged_view:
        assert staged_view[field] == mono_view[field], (
            f"{context}: staged != monolithic on {field!r}"
        )


# 52 randomized seeds: each runs the full cold -> warm -> edit scenario, so
# the suite covers 200+ staged-vs-monolithic comparisons in total.
@pytest.mark.parametrize("seed", range(52))
def test_staged_equals_monolithic_across_edits(seed):
    rng = random.Random(seed)
    sources = build_random_design(rng)
    # A few seeds keep the stdlib in play (slower but exercises the shared
    # memoised stdlib AST inside snapshots); most skip it for speed.
    include_stdlib = seed % 13 == 0
    options = {"include_stdlib": include_stdlib}

    stage_cache = StageCache()

    # Case 1: cold staged compile vs cold monolithic compile.
    staged = stage_cache.compile(sources, options)
    monolithic = compile_sources(sources, **options)
    assert_equivalent(staged, monolithic, f"seed {seed} cold")

    # Case 2: fully warm staged recompile (ASTs + evaluate snapshot hit).
    warm = stage_cache.compile(sources, options)
    assert stage_cache.stats.evaluate_hits == 1
    assert_equivalent(warm, monolithic, f"seed {seed} warm")

    # Case 3: a randomized single-file edit -- N-1 parse artefacts stay warm.
    edited, edited_index = mutate_design(rng, sources)
    hits_before = stage_cache.stats.parse_hits
    staged_edited = stage_cache.compile(edited, options)
    mono_edited = compile_sources(edited, **options)
    assert_equivalent(staged_edited, mono_edited, f"seed {seed} edited file {edited_index}")
    # Only the edited file was re-parsed; every other file hit the AST cache.
    assert stage_cache.stats.parse_hits == hits_before + len(sources) - 1
    assert stage_cache.stats.parse_misses == len(sources) + 1

    # Case 4: downstream-option change reuses the evaluate snapshot.
    eval_hits_before = stage_cache.stats.evaluate_hits
    relaxed_options = {**options, "run_drc": False}
    staged_relaxed = stage_cache.compile(edited, relaxed_options)
    mono_relaxed = compile_sources(edited, **relaxed_options)
    assert_equivalent(staged_relaxed, mono_relaxed, f"seed {seed} relaxed drc")
    assert stage_cache.stats.evaluate_hits == eval_hits_before + 1


@pytest.mark.parametrize("seed", range(8))
def test_staged_equals_monolithic_through_compilation_cache(seed, tmp_path):
    """End-to-end: the CompilationCache front door (what BatchCompiler uses)."""
    rng = random.Random(1000 + seed)
    sources = build_random_design(rng)

    cache = CompilationCache(cache_dir=tmp_path / "cache")
    first = compile_sources(sources, include_stdlib=False, cache=cache)
    reference = compile_sources(sources, include_stdlib=False)
    assert_equivalent(first, reference, f"seed {seed} via cache, cold")

    edited, _ = mutate_design(rng, sources)
    staged_edited = compile_sources(edited, include_stdlib=False, cache=cache)
    mono_edited = compile_sources(edited, include_stdlib=False)
    assert_equivalent(staged_edited, mono_edited, f"seed {seed} via cache, edited")

    # A second process over the same disk store: only the stage tiers are
    # warm in the new instance, the whole-result get() precedes them.
    fresh_cache = CompilationCache(cache_dir=tmp_path / "cache", max_entries=1)
    fresh_cache.clear()  # in-memory only; disk artefacts survive
    again = compile_sources(edited, include_stdlib=False, cache=fresh_cache)
    assert_equivalent(again, mono_edited, f"seed {seed} fresh instance")


def test_degenerate_options_pass_through_verbatim():
    """Falsy option values (e.g. project_name='') must not be coerced away
    on the staged path -- cache presence may never change the output."""
    sources = [("type t = Stream(Bit(4), d=1);", "t.td")]
    options = {"include_stdlib": False, "project_name": ""}
    staged = StageCache().compile(sources, options)
    monolithic = compile_sources(sources, include_stdlib=False, project_name="")
    assert staged.project.name == monolithic.project.name == ""
    assert_equivalent(staged, monolithic, "empty project_name")


def test_staged_pipeline_raises_identical_errors():
    """Parse/evaluate/DRC failures surface identically staged and monolithic."""
    from repro.errors import TydiDRCError, TydiNameError, TydiSyntaxError

    stage_cache = StageCache()
    cases = [
        ("streamlet broken {", TydiSyntaxError),  # parse error
        ("impl ghost_i of missing_s { }\ntop ghost_i;", TydiNameError),  # evaluate
        (
            # Two sinks on one source without sugaring: strict DRC rejects.
            "type t = Stream(Bit(4), d=1);\n"
            "streamlet s { a: t in, x: t out, y: t out, }\n"
            "impl i of s { a => x, a => y, }\n"
            "top i;",
            TydiDRCError,
        ),
    ]
    for source, expected in cases:
        options = {"include_stdlib": False}
        if expected is TydiDRCError:
            options["sugaring"] = False
        with pytest.raises(expected) as staged_exc:
            stage_cache.compile([(source, "bad.td")], options)
        with pytest.raises(expected) as mono_exc:
            compile_sources([(source, "bad.td")], **options)
        assert str(staged_exc.value) == str(mono_exc.value)

    # And a *repeat* of the DRC failure reuses the evaluate snapshot while
    # still raising the identical error (snapshot immutability in action).
    assert stage_cache.stats.evaluate_misses >= 1
    source, _ = cases[2][0], cases[2][1]
    with pytest.raises(TydiDRCError):
        stage_cache.compile([(source, "bad.td")], {"include_stdlib": False, "sugaring": False})
    assert stage_cache.stats.evaluate_hits >= 1
