"""Tests for the batch compilation driver (fan-out, isolation, determinism).

``BatchCompiler`` is the deprecated facade over
``repro.workspace.Workspace.compile_all``; this suite keeps exercising it
on purpose (the shim must stay byte-identical), so its deprecation warning
is filtered here -- the CI ``-W error::DeprecationWarning`` job still
catches any *other* code path that reaches the deprecated drivers.
"""

import pytest

from repro.pipeline import (
    BatchCompilationError,
    BatchCompiler,
    CompilationCache,
    CompileJob,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def design_source(width: int) -> str:
    return f"""
type data_t = Stream(Bit({width}), d=1);
streamlet pass_s {{ i: data_t in, o: data_t out, }}
impl pass_i of pass_s {{ i => o, }}
top pass_i;
"""


BAD_SOURCE = """
streamlet broken_s { i: MysteryType in, }
impl broken_i of broken_s {}
top broken_i;
"""


def make_jobs(count: int = 5) -> list[CompileJob]:
    return [
        CompileJob(name=f"design_{width}", sources=((design_source(width), f"design_{width}.td"),))
        for width in range(1, count + 1)
    ]


class TestCompileJob:
    def test_fingerprint_tracks_options(self):
        job = make_jobs(1)[0]
        assert job.fingerprint() == job.fingerprint()
        assert job.fingerprint() != job.with_options(sugaring=False).fingerprint()

    def test_direct_compile(self):
        result = make_jobs(1)[0].compile()
        assert "impl pass_i" in result.ir_text()

    def test_project_name_defaults_to_job_name(self):
        job = make_jobs(1)[0]
        assert job.options()["project_name"] == job.name
        assert job.compile().project.name == job.name


class TestBatchCompiler:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_all_jobs_compile(self, executor):
        jobs = make_jobs(4)
        outcome = BatchCompiler(executor=executor, max_workers=2).compile_batch(jobs)
        assert outcome.ok
        assert [entry.name for entry in outcome.results] == [job.name for job in jobs]
        assert len(outcome.result_map()) == 4
        assert outcome.stats()["failed"] == 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_failing_design_is_isolated(self, executor):
        jobs = make_jobs(3)
        jobs.insert(1, CompileJob(name="broken", sources=((BAD_SOURCE, "broken.td"),)))
        outcome = BatchCompiler(executor=executor, max_workers=2).compile_batch(jobs)
        assert not outcome.ok
        assert [entry.ok for entry in outcome.results] == [True, False, True, True]
        failure = outcome.results[1]
        assert failure.error and "MysteryType" in failure.error
        assert failure.error_stage is not None
        assert outcome.stats()["succeeded"] == 3
        with pytest.raises(BatchCompilationError, match="broken"):
            outcome.raise_if_failed()

    def test_parallel_output_identical_to_serial(self):
        jobs = make_jobs(6)
        serial = BatchCompiler(executor="serial").compile_batch(jobs)
        threaded = BatchCompiler(executor="thread", max_workers=4).compile_batch(jobs)
        for a, b in zip(serial.results, threaded.results):
            assert a.result.ir_text() == b.result.ir_text()

    def test_process_output_identical_to_serial(self):
        jobs = make_jobs(3)
        serial = BatchCompiler(executor="serial").compile_batch(jobs)
        forked = BatchCompiler(executor="process", max_workers=2).compile_batch(jobs)
        for a, b in zip(serial.results, forked.results):
            assert a.result.ir_text() == b.result.ir_text()

    def test_duplicate_job_names_rejected(self):
        jobs = make_jobs(2)
        with pytest.raises(ValueError, match="duplicate"):
            BatchCompiler().compile_batch([jobs[0], jobs[0]])

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            BatchCompiler(executor="carrier-pigeon")

    def test_empty_batch(self):
        outcome = BatchCompiler().compile_batch([])
        assert outcome.ok and len(outcome) == 0


class TestBatchWithCache:
    def test_second_batch_hits_cache(self):
        cache = CompilationCache()
        compiler = BatchCompiler(cache=cache, executor="thread", max_workers=3)
        jobs = make_jobs(4)
        cold = compiler.compile_batch(jobs)
        warm = compiler.compile_batch(jobs)
        assert all(not entry.from_cache for entry in cold.results)
        assert all(entry.from_cache for entry in warm.results)
        assert warm.stats()["cached"] == 4
        for a, b in zip(cold.results, warm.results):
            assert a.result.ir_text() == b.result.ir_text()

    def test_process_foldback_does_not_rewrite_disk(self, tmp_path):
        """Workers already pickled fresh results to disk; the parent folds
        them into memory without re-serialising."""
        cache = CompilationCache(cache_dir=tmp_path)
        jobs = make_jobs(3)
        cold = BatchCompiler(cache=cache, executor="process", max_workers=2).compile_batch(jobs)
        assert cold.ok and all(not e.from_cache for e in cold.results)
        assert len(list(tmp_path.glob("*.pkl"))) == 3  # written by the workers
        assert cache.stats.disk_stores == 0  # ... not by the parent
        # ... but the parent's memory tier is warm.
        warm = BatchCompiler(cache=cache, executor="serial").compile_batch(jobs)
        assert all(e.from_cache for e in warm.results)
        assert cache.stats.disk_hits == 0

    def test_process_workers_share_disk_cache(self, tmp_path):
        cache = CompilationCache(cache_dir=tmp_path)
        jobs = make_jobs(3)
        BatchCompiler(cache=cache, executor="serial").compile_batch(jobs)

        # A fresh compiler over the same directory: workers hit the disk tier,
        # and the parent's stats absorb those hits (so --json output of a
        # warm process batch actually reports hits).
        warm_cache = CompilationCache(cache_dir=tmp_path)
        warm = BatchCompiler(cache=warm_cache, executor="process", max_workers=2).compile_batch(jobs)
        assert all(entry.from_cache for entry in warm.results)
        assert warm_cache.stats.hits == 3
        assert warm_cache.stats.disk_hits == 3
        # ... and its memory tier is warm for follow-up serial/thread batches.
        assert len(warm_cache) == 3

    def test_process_batch_warms_from_memory_only_cache(self):
        """Without a disk tier the parent's in-memory cache still makes the
        second process batch warm (pre-checked before pool dispatch)."""
        cache = CompilationCache()  # no cache_dir
        compiler = BatchCompiler(cache=cache, executor="process", max_workers=2)
        jobs = make_jobs(3)
        cold = compiler.compile_batch(jobs)
        assert all(not e.from_cache for e in cold.results)
        warm = compiler.compile_batch(jobs)
        assert all(e.from_cache for e in warm.results)
        assert cache.stats.hits == 3
        for a, b in zip(cold.results, warm.results):
            assert a.result.ir_text() == b.result.ir_text()

    def test_failed_jobs_are_not_cached(self):
        cache = CompilationCache()
        compiler = BatchCompiler(cache=cache, executor="serial")
        jobs = [CompileJob(name="broken", sources=((BAD_SOURCE, "broken.td"),))]
        compiler.compile_batch(jobs)
        again = compiler.compile_batch(jobs)
        assert not again.results[0].from_cache
        assert cache.stats.stores == 0


class TestTpchSuiteBatch:
    def test_force_bypasses_cache(self):
        """TpchQuery.compile(force=True) really recompiles, cache or not."""
        from repro.queries import QUERIES

        query = QUERIES["q6"]
        cache = CompilationCache()
        first = query.compile(force=True, cache=cache)
        cache.put(cache.key_for(query.sources(), query.compile_job().options()), first)
        forced = query.compile(force=True, cache=cache)
        assert forced is not first  # a fresh compile, not the cached object
        assert cache.stats.hits == 0

    def test_compile_all_through_batch_driver(self):
        from repro.queries import ALL_QUERIES, compile_all

        fresh = [q for q in ALL_QUERIES]
        for query in fresh:
            query._compiled = None  # force a real batch compile
        results = compile_all(executor="thread", max_workers=4)
        assert set(results) == {q.name for q in ALL_QUERIES}
        # The batch results are memoised onto the query objects.
        for query in ALL_QUERIES:
            assert query._compiled is results[query.name]
            assert f"impl {query.top}" in results[query.name].ir_text()


class TestBackendTargets:
    def test_job_targets_produce_outputs(self):
        job_with_targets = make_jobs(1)[0].with_options(targets=("vhdl", "dot"))
        result = job_with_targets.compile()
        assert set(result.outputs) == {"vhdl", "dot"}
        assert any(name.endswith(".vhd") for name in result.outputs["vhdl"])

    def test_targets_participate_in_fingerprint(self):
        base = make_jobs(1)[0]
        assert base.fingerprint() != base.with_options(targets=("vhdl",)).fingerprint()
        # Duplicates are normalised away, so they do not split the cache.
        assert (
            base.with_options(targets=("vhdl", "vhdl")).fingerprint()
            == base.with_options(targets=("vhdl",)).fingerprint()
        )

    def test_batch_carries_backend_outputs_and_caches_them(self):
        cache = CompilationCache()
        compiler = BatchCompiler(cache=cache, executor="serial")
        jobs = [job.with_options(targets=("vhdl", "ir")) for job in make_jobs(3)]
        cold = compiler.compile_batch(jobs)
        assert cold.ok
        for entry in cold.results:
            assert set(entry.result.outputs) == {"vhdl", "ir"}
            assert entry.as_dict()["outputs"] == {
                "vhdl": len(entry.result.outputs["vhdl"]),
                "ir": len(entry.result.outputs["ir"]),
            }
        warm = compiler.compile_batch(jobs)
        assert all(entry.from_cache for entry in warm.results)
        for cold_entry, warm_entry in zip(cold.results, warm.results):
            assert warm_entry.result.outputs == cold_entry.result.outputs

    def test_unknown_target_is_isolated_error(self):
        compiler = BatchCompiler(executor="serial")
        jobs = [make_jobs(1)[0].with_options(targets=("systemc",))]
        outcome = compiler.compile_batch(jobs)
        assert not outcome.ok
        entry = outcome.results[0]
        assert entry.error_stage == "backend"
        assert "unknown backend" in entry.error


class TestWorkerCount:
    def test_explicit_workers_always_respected(self):
        from repro.pipeline.batch import _worker_count

        assert _worker_count("process", 32, 64) == 32
        assert _worker_count("thread", 32, 64) == 32
        assert _worker_count("process", 32, 4) == 4  # clamped to job count

    def test_defaults_are_executor_aware(self):
        import os

        from repro.pipeline.batch import _worker_count

        cpus = os.cpu_count() or 2
        assert _worker_count("thread", None, 1000) == min(cpus, 8)
        assert _worker_count("process", None, 1000) == cpus

    def test_serial_and_tiny_batches(self):
        from repro.pipeline.batch import _worker_count

        assert _worker_count("serial", 16, 100) == 1
        assert _worker_count("process", 16, 1) == 1


class TestParallelParse:
    SOURCES = tuple(
        (design_source(width), f"par_{width}.td") for width in range(1, 7)
    )

    def test_parallel_equals_serial(self):
        from repro.lang.compile import parse_stage
        from repro.pipeline.batch import parallel_parse_stage

        serial_units, serial_entry = parse_stage(self.SOURCES)
        parallel_units, parallel_entry = parallel_parse_stage(self.SOURCES, jobs=4)
        assert parallel_units == serial_units
        assert parallel_entry == serial_entry

    def test_parallel_equals_serial_without_stdlib(self):
        from repro.lang.compile import parse_stage
        from repro.pipeline.batch import parallel_parse_stage

        serial = parse_stage(self.SOURCES, include_stdlib=False)
        parallel = parallel_parse_stage(self.SOURCES, include_stdlib=False, jobs=3)
        assert parallel == serial

    def test_single_worker_takes_serial_path(self):
        from repro.lang.compile import parse_stage
        from repro.pipeline.batch import parallel_parse_stage

        assert parallel_parse_stage(self.SOURCES, jobs=1) == parse_stage(self.SOURCES)

    def test_parse_error_propagates(self):
        from repro.errors import TydiSyntaxError
        from repro.pipeline.batch import parallel_parse_stage

        bad = self.SOURCES + (("streamlet ? {", "bad.td"),)
        with pytest.raises(TydiSyntaxError):
            parallel_parse_stage(bad, jobs=4)

    def test_preload_units_warms_parse_tier(self):
        cache = CompilationCache()
        stage_cache = cache.stages
        parsed = stage_cache.preload_units(self.SOURCES, jobs=4)
        assert parsed == len(self.SOURCES)
        # Everything warmed: a second preload parses nothing...
        assert stage_cache.preload_units(self.SOURCES, jobs=4) == 0
        # ...and a compile's parse stage is all hits.
        before = stage_cache.stats_snapshot()["parse_hits"]
        for text, filename in self.SOURCES:
            stage_cache.cached_parse(text, filename)
        after = stage_cache.stats_snapshot()["parse_hits"]
        assert after - before == len(self.SOURCES)

    def test_preloaded_compile_matches_cold_compile(self):
        from repro.lang.compile import CompileOptions, run_pipeline
        from repro.testing import build_chain_design

        sources = build_chain_design(4)
        cache = CompilationCache()
        cache.stages.preload_units(sources, jobs=4)
        warm = cache.stages.compile(list(sources), CompileOptions().as_dict())
        cold = run_pipeline(sources, CompileOptions())
        assert warm.ir_text() == cold.ir_text()
        assert [s.name for s in warm.stages] == [s.name for s in cold.stages]
