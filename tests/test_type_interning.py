"""Constructor-level interning of logical types.

The contract: interning is a pure optimisation.  ``__eq__``/``__hash__``
semantics are untouched, and -- critically -- the *strict equality* rules
of :mod:`repro.spec.compat` are preserved: anonymous structural twins must
remain distinct objects, because ``strictly_equal`` distinguishes them.
"""

from __future__ import annotations

import pickle

import pytest

from repro.spec.compat import strictly_equal, structurally_equal
from repro.spec.logical_types import (
    Bit,
    Group,
    Null,
    Stream,
    Union,
    _InternedTypeMeta,
    clear_intern_table,
    intern_table_size,
)


@pytest.fixture(autouse=True)
def _fresh_table():
    clear_intern_table()
    yield
    clear_intern_table()


class TestInterning:
    def test_primitives_are_interned(self):
        assert Bit(8) is Bit(8)
        assert Null() is Null()
        assert Bit(8) is not Bit(16)

    def test_named_compounds_are_interned(self):
        a = Group.of("pair", x=Bit(8), y=Bit(8))
        b = Group.of("pair", x=Bit(8), y=Bit(8))
        assert a is b
        u1 = Union.of("either", l=Bit(8), r=Bit(4))
        u2 = Union.of("either", l=Bit(8), r=Bit(4))
        assert u1 is u2

    def test_streams_of_primitives_are_interned(self):
        assert Stream(Bit(8), dimension=1) is Stream(Bit(8), dimension=1)
        assert Stream(Bit(8), dimension=1) is not Stream(Bit(8), dimension=2)

    def test_anonymous_compounds_are_not_interned(self):
        a = Group.of(None, x=Bit(8))
        b = Group.of(None, x=Bit(8))
        assert a is not b
        assert a == b  # structural dataclass equality is untouched
        u1 = Union.of(None, l=Bit(8))
        u2 = Union.of(None, l=Bit(8))
        assert u1 is not u2

    def test_streams_of_anonymous_compounds_are_not_interned(self):
        s1 = Stream(Group.of(None, x=Bit(8)))
        s2 = Stream(Group.of(None, x=Bit(8)))
        assert s1 is not s2
        assert s1 == s2

    def test_invalid_constructions_never_intern(self):
        from repro.errors import TydiTypeError

        size = intern_table_size()
        with pytest.raises(TydiTypeError):
            Bit(0)
        assert intern_table_size() == size


class TestStrictEqualitySemanticsPreserved:
    def test_anonymous_structural_twins_stay_strictly_unequal(self):
        a = Group.of(None, x=Bit(8))
        b = Group.of(None, x=Bit(8))
        assert structurally_equal(a, b)
        assert not strictly_equal(a, b)

    def test_streams_around_anonymous_twins_stay_strictly_unequal(self):
        s1 = Stream(Group.of(None, x=Bit(8)), dimension=1)
        s2 = Stream(Group.of(None, x=Bit(8)), dimension=1)
        assert structurally_equal(s1, s2)
        assert not strictly_equal(s1, s2)

    def test_named_twins_are_strictly_equal_and_shared(self):
        a = Group.of("t", x=Bit(8))
        b = Group.of("t", x=Bit(8))
        assert strictly_equal(a, b)
        assert a is b

    def test_identity_fast_path_matches_deep_comparison(self):
        s = Stream(Bit(8), dimension=1)
        assert structurally_equal(s, Stream(Bit(8), dimension=1))
        assert strictly_equal(s, Stream(Bit(8), dimension=1))


class TestTableManagement:
    def test_capacity_overflow_clears_table(self):
        capacity = _InternedTypeMeta._INTERN_CAPACITY
        try:
            _InternedTypeMeta._INTERN_CAPACITY = 4
            clear_intern_table()
            for width in range(1, 10):
                Bit(width)
            assert intern_table_size() <= 5  # cleared at least once
            # Interning still works after a clear.
            assert Bit(123) is Bit(123)
        finally:
            _InternedTypeMeta._INTERN_CAPACITY = capacity

    def test_clear_intern_table(self):
        Bit(8)
        assert intern_table_size() > 0
        clear_intern_table()
        assert intern_table_size() == 0


class TestPickle:
    def test_round_trip_preserves_equality(self):
        original = Stream(Group.of("g", x=Bit(8), y=Bit(4)), dimension=2)
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert structurally_equal(clone, original)
        assert strictly_equal(clone, original)

    def test_sharing_within_one_payload_survives(self):
        shared = Group.of("g", x=Bit(8))
        payload = pickle.loads(pickle.dumps((shared, shared)))
        assert payload[0] is payload[1]
