"""Unit tests for the Tydi-spec logical type system."""

import pytest

from repro.errors import TydiTypeError
from repro.spec.logical_types import Bit, Group, Null, Stream, Union, bool_stream
from repro.spec.stream_params import Complexity, Direction, Synchronicity, Throughput


class TestNull:
    def test_zero_width(self):
        assert Null().bit_width() == 0

    def test_render(self):
        assert Null().to_tydi() == "Null"

    def test_is_null(self):
        assert Null().is_null()
        assert not Bit(1).is_null()


class TestBit:
    def test_width(self):
        assert Bit(8).bit_width() == 8

    def test_ascii_character_is_8_bits(self):
        # The paper's example: an ASCII character requires Bit(8).
        assert Bit(8).to_tydi() == "Bit(8)"

    def test_zero_width_rejected(self):
        with pytest.raises(TydiTypeError):
            Bit(0)

    def test_negative_width_rejected(self):
        with pytest.raises(TydiTypeError):
            Bit(-3)

    def test_non_integer_rejected(self):
        with pytest.raises(TydiTypeError):
            Bit(2.5)
        with pytest.raises(TydiTypeError):
            Bit(True)


class TestGroup:
    def test_width_is_sum_of_fields(self):
        group = Group.of("Pair", lo=Bit(8), hi=Bit(24))
        assert group.bit_width() == 32

    def test_field_lookup(self):
        group = Group.of("Pair", lo=Bit(8), hi=Bit(24))
        assert group.field("hi").bit_width() == 24
        with pytest.raises(TydiTypeError):
            group.field("missing")

    def test_duplicate_field_rejected(self):
        with pytest.raises(TydiTypeError):
            Group((("a", Bit(1)), ("a", Bit(2))))

    def test_invalid_field_name_rejected(self):
        with pytest.raises(TydiTypeError):
            Group((("not valid", Bit(1)),))

    def test_nested_group_width(self):
        inner = Group.of("Inner", x=Bit(4))
        outer = Group.of("Outer", inner=inner, flag=Bit(1))
        assert outer.bit_width() == 5

    def test_named_rendering(self):
        group = Group.of("AdderInput", data0=Bit(32), data1=Bit(32))
        assert "AdderInput" in group.to_tydi()

    def test_walk_visits_children(self):
        group = Group.of("G", a=Bit(1), b=Bit(2))
        kinds = [t.kind for t in group.walk()]
        assert kinds == ["Group", "Bit", "Bit"]

    def test_field_names_order_preserved(self):
        group = Group.of("G", z=Bit(1), a=Bit(1))
        assert group.field_names() == ["z", "a"]


class TestUnion:
    def test_width_is_max_plus_tag(self):
        union = Union.of("U", small=Bit(4), big=Bit(12))
        # 12 payload bits + 1 tag bit for 2 variants
        assert union.bit_width() == 13

    def test_single_variant_no_tag(self):
        union = Union.of("U", only=Bit(7))
        assert union.tag_width() == 0
        assert union.bit_width() == 7

    def test_four_variants_two_tag_bits(self):
        union = Union.of("U", a=Bit(1), b=Bit(1), c=Bit(1), d=Bit(1))
        assert union.tag_width() == 2

    def test_empty_union_rejected(self):
        with pytest.raises(TydiTypeError):
            Union(())

    def test_variant_lookup(self):
        union = Union.of("U", a=Bit(3), b=Bit(5))
        assert union.variant("b").bit_width() == 5
        with pytest.raises(TydiTypeError):
            union.variant("c")


class TestStream:
    def test_sentence_example(self):
        # The paper: Stream(Bit(8), dimension=2) represents an English sentence.
        sentence = Stream.new(Bit(8), dimension=2)
        assert sentence.dimension == 2
        assert sentence.data_width() == 8

    def test_default_parameters(self):
        stream = Stream.new(Bit(8))
        assert stream.direction is Direction.FORWARD
        assert stream.synchronicity is Synchronicity.SYNC
        assert stream.complexity == Complexity()
        assert float(stream.throughput) == 1.0

    def test_throughput_lanes_multiply_width(self):
        stream = Stream.new(Bit(8), throughput=4)
        assert stream.bit_width() == 32

    def test_fractional_throughput_rounds_up_lanes(self):
        stream = Stream.new(Bit(8), throughput=2.5)
        assert stream.throughput.lanes == 3

    def test_nested_stream_rejected(self):
        inner = Stream.new(Bit(8))
        with pytest.raises(TydiTypeError):
            Stream.new(inner)

    def test_negative_dimension_rejected(self):
        with pytest.raises(TydiTypeError):
            Stream(element=Bit(1), dimension=-1)

    def test_with_element_preserves_parameters(self):
        stream = Stream.new(Bit(8), dimension=2, throughput=2)
        changed = stream.with_element(Bit(16))
        assert changed.element == Bit(16)
        assert changed.dimension == 2
        assert changed.throughput == stream.throughput

    def test_render_includes_dimension(self):
        assert "d=2" in Stream.new(Bit(8), dimension=2).to_tydi()

    def test_contains_stream(self):
        group = Group.of("G", payload=Stream.new(Bit(8)))
        assert group.contains_stream()
        assert not Group.of("G2", payload=Bit(8)).contains_stream()

    def test_string_direction_and_sync(self):
        stream = Stream.new(Bit(1), direction="Reverse", synchronicity="Flatten")
        assert stream.direction is Direction.REVERSE
        assert stream.synchronicity is Synchronicity.FLATTEN

    def test_mangle_name(self):
        assert Stream.new(Bit(8), dimension=1).mangle_name() == "stream_bit_8_d1"


class TestBoolStream:
    def test_shape(self):
        stream = bool_stream()
        assert stream.element == Bit(1)
        assert stream.dimension == 1
