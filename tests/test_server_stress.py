"""Concurrency stress test of the compile service (:mod:`repro.server`).

The acceptance property of a served session: whatever interleaving of
clients, edits and queries the server saw, every design's final answers
are **byte-identical** to a fresh one-shot ``compile_sources`` of its
final sources -- IR text, backend outputs, diagnostics, and the error
envelope for designs whose final state is broken.  And mixed-design
traffic from many threads never deadlocks (joins are bounded).

The designs and edits come from the shared fuzzers in
:mod:`repro.testing` (the same substrate as the staged-vs-monolithic and
workspace differential harnesses).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.backends import get_backend
from repro.errors import TydiError
from repro.lang.compile import compile_sources
from repro.server import CompileClient, CompileService, RemoteCompileError, ServerThread
from repro.testing import build_random_design, mutate_design

#: Bounded join: a worker that has not finished by then is deadlocked.
JOIN_TIMEOUT = 120.0

#: A file that breaks any design it is added to (parse error).
BROKEN_TEXT = "type ?! = Stream(;\n"


def _final_reference(sources):
    """One-shot compile of the final sources: result or the raised error."""
    try:
        return compile_sources(sources, cache=None), None
    except TydiError as exc:
        return None, exc


class _Worker(threading.Thread):
    """One client thread: open a fuzzed design, edit it, re-query, verify."""

    def __init__(self, address, name: str, seed: int, rounds: int, break_sometimes: bool):
        super().__init__(name=f"stress-{name}", daemon=True)
        self.address = address
        self.design = name
        self.seed = seed
        self.rounds = rounds
        self.break_sometimes = break_sometimes
        self.final_sources = None
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self._run()
        except BaseException as exc:  # surfaced by the main thread
            self.error = exc

    def _run(self) -> None:
        rng = random.Random(self.seed)
        sources = build_random_design(rng)
        with CompileClient(*self.address, connect_retry_for=10.0) as client:
            client.open_design(
                self.design,
                files={filename: text for text, filename in sources},
                options={"include_stdlib": True},
            )
            broken = False
            for _ in range(self.rounds):
                if self.break_sometimes and rng.random() < 0.3:
                    # Break or un-break the design via a scratch file.
                    if broken:
                        client.remove_file(self.design, "broken.td")
                    else:
                        client.update_file(self.design, "broken.td", BROKEN_TEXT)
                    broken = not broken
                else:
                    sources, index = mutate_design(rng, sources)
                    text, filename = sources[index]
                    client.update_file(self.design, filename, text)
                # Interleave a query; a broken state must answer with the
                # structured parse error, a healthy one with IR.
                try:
                    ir = client.get_ir(self.design)
                    assert ir.strip(), "served IR is empty"
                except RemoteCompileError as exc:
                    assert exc.remote_stage != "server", f"protocol error: {exc}"
            self.final_sources = list(sources)
            if broken:
                self.final_sources.append((BROKEN_TEXT, "broken.td"))

            # Differential check on the final state, over the same client.
            reference, expected_error = _final_reference(self.final_sources)
            if expected_error is None:
                assert client.get_ir(self.design) == reference.ir_text()
                served_vhdl = client.get_outputs(self.design, "vhdl")
                assert served_vhdl == get_backend("vhdl").emit(reference.project)
                served_diags = client.get_diagnostics(self.design)
                assert [d["message"] for d in served_diags] == [
                    d.message for d in reference.diagnostics
                ]
            else:
                with pytest.raises(RemoteCompileError) as excinfo:
                    client.get_ir(self.design)
                assert excinfo.value.remote_type == type(expected_error).__name__
                assert excinfo.value.envelope["rendered"] == expected_error.render()


def _run_workers(workers) -> None:
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=JOIN_TIMEOUT)
        assert not worker.is_alive(), f"{worker.name} deadlocked (join timed out)"
    for worker in workers:
        if worker.error is not None:
            raise AssertionError(f"{worker.name} failed: {worker.error!r}") from worker.error


class TestServerStress:
    def test_concurrent_clients_distinct_designs_match_oneshot(self):
        with ServerThread(CompileService(jobs=4)) as server:
            workers = [
                _Worker(server.address, f"design{index}", seed=1000 + index,
                        rounds=6, break_sometimes=False)
                for index in range(6)
            ]
            _run_workers(workers)

    def test_concurrent_clients_with_failing_states_match_oneshot(self):
        with ServerThread(CompileService(jobs=4)) as server:
            workers = [
                _Worker(server.address, f"flaky{index}", seed=2000 + index,
                        rounds=8, break_sometimes=True)
                for index in range(4)
            ]
            _run_workers(workers)

    def test_same_design_hammering_coalesces_and_stays_consistent(self):
        """Readers and one writer on ONE design: every response is a valid
        snapshot (the IR always matches one of the contents the writer
        produced), and nothing deadlocks on the shared per-design lock."""
        rng = random.Random(42)
        sources = build_random_design(rng)
        edits = [sources]
        for _ in range(5):
            edited, _ = mutate_design(rng, edits[-1])
            edits.append(edited)
        valid_irs = {
            compile_sources(snapshot, cache=None).ir_text() for snapshot in edits
        }

        with ServerThread(CompileService(jobs=4)) as server:
            with CompileClient(*server.address) as writer:
                writer.open_design(
                    "shared", files={filename: text for text, filename in sources}
                )
                writer.get_ir("shared")

                stop = threading.Event()
                failures: list[str] = []

                def read_loop() -> None:
                    try:
                        with CompileClient(*server.address) as reader:
                            while not stop.is_set():
                                ir = reader.get_ir("shared")
                                if ir not in valid_irs:
                                    failures.append("reader saw an IR no edit produced")
                                    return
                    except BaseException as exc:
                        failures.append(repr(exc))

                readers = [threading.Thread(target=read_loop, daemon=True) for _ in range(3)]
                for thread in readers:
                    thread.start()
                # Each snapshot differs from its predecessor in exactly one
                # file (mutate_design edits one file per round), so a reader
                # landing between two update_file calls still sees a state
                # from `edits` -- never an invalid hybrid.
                for snapshot in edits[1:]:
                    for text, filename in snapshot:
                        writer.update_file("shared", filename, text)
                    writer.get_ir("shared")
                stop.set()
                for thread in readers:
                    thread.join(timeout=JOIN_TIMEOUT)
                    assert not thread.is_alive(), "reader deadlocked"
                assert not failures, failures

                reference = compile_sources(edits[-1], cache=None)
                assert writer.get_ir("shared") == reference.ir_text()
