"""Unit tests for the Fletcher-equivalent interface generator."""

import pytest

from repro.arrow.dataset import Table
from repro.arrow.fletcher import (
    FletcherReaderBehavior,
    fletcher_interface_source,
    fletcher_loc,
    fletcher_type_preamble,
    reader_behaviors,
    reader_name,
)
from repro.arrow.schema import ArrowSchema
from repro.arrow.tpch import LINEITEM_SCHEMA, PART_SCHEMA
from repro.errors import TydiSimulationError
from repro.lang.compile import compile_sources
from repro.lang.parser import parse_source
from repro.sim import Simulator
from repro.utils.text import count_loc


class TestInterfaceGeneration:
    def test_preamble_defines_all_aliases(self):
        preamble = fletcher_type_preamble()
        for alias in ("tpch_int", "tpch_decimal", "tpch_char", "tpch_date"):
            assert f"type {alias} =" in preamble

    def test_interface_parses_as_tydi_lang(self):
        source = fletcher_interface_source([LINEITEM_SCHEMA, PART_SCHEMA])
        unit = parse_source(source)
        assert unit.package == "fletcher"

    def test_one_reader_per_schema(self):
        source = fletcher_interface_source([LINEITEM_SCHEMA, PART_SCHEMA])
        assert "external impl lineitem_reader_i" in source
        assert "external impl part_reader_i" in source

    def test_one_output_port_per_column(self):
        source = fletcher_interface_source([PART_SCHEMA])
        for field in PART_SCHEMA.fields:
            assert f"{field.name}: {field.type_alias()} out," in source

    def test_loc_scales_with_schema_width(self):
        small = fletcher_loc([PART_SCHEMA])
        large = fletcher_loc([LINEITEM_SCHEMA])
        both = fletcher_loc([PART_SCHEMA, LINEITEM_SCHEMA])
        assert small < large < both
        assert both == count_loc(fletcher_interface_source([PART_SCHEMA, LINEITEM_SCHEMA]), "tydi")

    def test_interface_compiles_with_stdlib(self):
        source = fletcher_interface_source([PART_SCHEMA])
        result = compile_sources([(source, "fletcher.td")], include_stdlib=True)
        assert any(name == "part_reader_i" for name in result.project.implementations)


class TestReaderBehavior:
    def test_streams_all_columns(self):
        schema = ArrowSchema.of("mini", key="int64", label="utf8")
        table = Table("mini", {"key": [1, 2, 3], "label": ["a", "b", "c"]})
        source = fletcher_interface_source([schema]) + """
        streamlet top_s { keys: tpch_int out, labels: tpch_char out, }
        impl top_i of top_s {
            instance reader(mini_reader_i),
            reader.key => keys,
            reader.label => labels,
        }
        top top_i;
        """
        result = compile_sources([(source, "t.td")], top="top_i")
        simulator = Simulator(result.project, behaviors=reader_behaviors([schema], {"mini": table}))
        trace = simulator.run()
        assert trace.output_values("keys") == [1, 2, 3]
        assert trace.output_values("labels") == ["a", "b", "c"]

    def test_final_row_closes_stream(self):
        schema = ArrowSchema.of("mini", key="int64")
        table = Table("mini", {"key": [7, 8]})
        source = fletcher_interface_source([schema]) + """
        streamlet top_s { keys: tpch_int out, }
        impl top_i of top_s { instance r(mini_reader_i), r.key => keys, }
        top top_i;
        """
        result = compile_sources([(source, "t.td")], top="top_i")
        simulator = Simulator(result.project, behaviors=reader_behaviors([schema], {"mini": table}))
        trace = simulator.run()
        packets = trace.output_packets("keys")
        assert [p.closes_outermost() for p in packets] == [False, True]

    def test_missing_dataset_rejected(self):
        with pytest.raises(TydiSimulationError):
            reader_behaviors([PART_SCHEMA], {})

    def test_reader_name_helper(self):
        assert reader_name(PART_SCHEMA) == "part_reader_i"
