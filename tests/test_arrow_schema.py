"""Unit tests for Arrow-like schemas and their mapping to Tydi types."""

import pytest

from repro.arrow.schema import (
    ArrowField,
    ArrowSchema,
    TYPE_ALIASES,
    arrow_type_to_tydi,
    decimal_bit_width,
    tydi_type_expression,
)
from repro.errors import TydiTypeError
from repro.spec.logical_types import Stream


class TestColumnTypes:
    def test_decimal_width_matches_paper(self):
        # Bit(ceil(log2(10^15 - 1))) == 50 (Section IV-A).
        assert decimal_bit_width(15) == 50

    def test_int64_maps_to_64_bit_stream(self):
        t = arrow_type_to_tydi("int64")
        assert isinstance(t, Stream)
        assert t.data_width() == 64
        assert t.dimension == 1

    def test_all_types_have_aliases_and_expressions(self):
        for column_type in ("int64", "int32", "decimal", "date", "utf8", "bool"):
            assert arrow_type_to_tydi(column_type).data_width() >= 1
            assert column_type in TYPE_ALIASES
            assert "Stream" in tydi_type_expression(column_type)

    def test_unknown_type_rejected(self):
        with pytest.raises(TydiTypeError):
            arrow_type_to_tydi("blob")
        with pytest.raises(TydiTypeError):
            tydi_type_expression("blob")


class TestArrowSchema:
    def make(self):
        return ArrowSchema.of("orders", o_orderkey="int64", o_orderdate="date", o_comment="utf8")

    def test_field_access(self):
        schema = self.make()
        assert schema.field("o_orderdate").column_type == "date"
        assert "o_comment" in schema
        assert len(schema) == 3
        with pytest.raises(KeyError):
            schema.field("missing")

    def test_field_names_in_order(self):
        assert self.make().field_names() == ["o_orderkey", "o_orderdate", "o_comment"]

    def test_duplicate_field_rejected(self):
        with pytest.raises(TydiTypeError):
            ArrowSchema("t", (ArrowField("a", "int64"), ArrowField("a", "date")))

    def test_invalid_column_type_rejected(self):
        with pytest.raises(TydiTypeError):
            ArrowField("a", "varchar")

    def test_subset(self):
        schema = self.make().subset(["o_orderkey", "o_comment"])
        assert schema.field_names() == ["o_orderkey", "o_comment"]

    def test_field_alias(self):
        assert self.make().field("o_orderkey").type_alias() == "tpch_int"
