"""The opt-in per-stage profiler and its ride along the stats plumbing."""

from __future__ import annotations

import pytest

from repro import profiling
from repro.lang.compile import CompileOptions, run_pipeline
from repro.profiling import PROFILER, StageProfiler, format_profile


@pytest.fixture(autouse=True)
def _profiler_off():
    """Leave the global profiler disabled and empty around every test."""
    PROFILER.disable()
    PROFILER.reset()
    yield
    PROFILER.disable()
    PROFILER.reset()


class TestStageProfiler:
    def test_disabled_by_default_and_noop(self):
        profiler = StageProfiler()
        assert not profiler.enabled
        with profiler.stage("parse"):
            pass
        assert profiler.snapshot() == {"enabled": False, "stages": {}}

    def test_enabled_records_wall_and_cpu(self):
        profiler = StageProfiler(enabled=True)
        with profiler.stage("work"):
            total = sum(range(10_000))
        assert total
        snapshot = profiler.snapshot()
        entry = snapshot["stages"]["work"]
        assert entry["count"] == 1
        assert entry["wall_ms"] >= 0
        assert entry["cpu_ms"] >= 0

    def test_counts_accumulate_and_reset(self):
        profiler = StageProfiler(enabled=True)
        for _ in range(3):
            with profiler.stage("s"):
                pass
        assert profiler.snapshot()["stages"]["s"]["count"] == 3
        profiler.reset()
        assert profiler.snapshot()["stages"] == {}

    def test_failing_stage_still_records(self):
        profiler = StageProfiler(enabled=True)
        with pytest.raises(ValueError):
            with profiler.stage("drc"):
                raise ValueError("boom")
        assert profiler.snapshot()["stages"]["drc"]["count"] == 1

    def test_env_parsing(self):
        enabled = profiling._env_enabled
        assert not enabled(None)
        for falsy in ("", "0", "false", "no", "off", " False ", "NO"):
            assert not enabled(falsy)
        for truthy in ("1", "true", "yes", "on", "anything"):
            assert enabled(truthy)


class TestPipelineIntegration:
    def test_stages_recorded_when_enabled(self):
        PROFILER.enable()
        run_pipeline([("streamlet s { }", "x.td")], CompileOptions())
        stages = PROFILER.snapshot()["stages"]
        for name in ("parse", "evaluate", "sugaring", "drc"):
            assert stages[name]["count"] == 1, name

    def test_backend_stages_recorded(self):
        PROFILER.enable()
        run_pipeline(
            [("streamlet s { }", "x.td")], CompileOptions(targets=("ir",))
        )
        assert "backend:ir" in PROFILER.snapshot()["stages"]

    def test_nothing_recorded_when_disabled(self):
        run_pipeline([("streamlet s { }", "x.td")], CompileOptions())
        assert PROFILER.snapshot()["stages"] == {}

    def test_workspace_stats_include_profiling_only_when_enabled(self):
        from repro.workspace import Workspace

        workspace = Workspace(cache=None)
        workspace.add_design("d", [("streamlet s { }", "x.td")])
        workspace.result("d")
        assert "profiling" not in workspace.stats()

        PROFILER.enable()
        workspace.update_file("d", "x.td", "streamlet s2 { }")
        workspace.result("d")
        stats = workspace.stats()
        assert stats["profiling"]["enabled"] is True
        assert stats["profiling"]["stages"]["parse"]["count"] >= 1


class TestFormatProfile:
    def test_empty_snapshot(self):
        assert "no stage timings" in format_profile({"enabled": True, "stages": {}})

    def test_table_rendering(self):
        snapshot = {
            "enabled": True,
            "stages": {"parse": {"count": 2, "wall_ms": 1.5, "cpu_ms": 1.25}},
        }
        table = format_profile(snapshot)
        assert "parse" in table and "1.500" in table and "1.250" in table


class TestPoolAggregation:
    def test_worker_profiling_blocks_are_summed(self):
        from repro.server.service import _aggregate_worker_workspaces

        def worker(wall):
            return {
                "workspace": {
                    "designs": {"total": 1, "fresh": 1, "stale": 0, "error": 0},
                    "stage_cache": {"parse_hits": 1},
                    "profiling": {
                        "enabled": True,
                        "stages": {"parse": {"count": 1, "wall_ms": wall, "cpu_ms": wall}},
                    },
                }
            }

        summary = _aggregate_worker_workspaces({"per_worker": [worker(1.5), worker(2.5)]})
        assert summary["profiling"]["enabled"] is True
        parse = summary["profiling"]["stages"]["parse"]
        assert parse["count"] == 2
        assert parse["wall_ms"] == pytest.approx(4.0)

    def test_no_profiling_block_without_worker_profiling(self):
        from repro.server.service import _aggregate_worker_workspaces

        summary = _aggregate_worker_workspaces(
            {
                "per_worker": [
                    {
                        "workspace": {
                            "designs": {"total": 1, "fresh": 1, "stale": 0, "error": 0},
                            "stage_cache": {},
                        }
                    }
                ]
            }
        )
        assert "profiling" not in summary
