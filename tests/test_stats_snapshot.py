"""Regression tests: stats snapshots are taken under the owning locks.

The server's ``stats`` endpoint (and ``Workspace.report``/``stats``, and
the CLI ``--json`` payloads) read cache counters while compile threads
mutate them.  ``stats_snapshot()`` copies the counters under the cache's
own lock, so a reader can never observe a *torn* set -- e.g. a lookup
whose ``hits`` increment is visible but whose ``disk_hits`` increment is
not.  These tests hammer the caches from writer threads while readers
snapshot continuously, asserting per-snapshot invariants that a torn read
would violate, plus exact final totals.
"""

from __future__ import annotations

import threading

from repro.lang.compile import compile_sources
from repro.pipeline.cache import CompilationCache
from repro.server import CompileService
from repro.workspace import Workspace

GOOD = (
    "type link_t = Stream(Bit(8));\n"
    "streamlet pass_s { i: link_t in, o: link_t out, }\n"
    "external impl pass_i of pass_s;\n"
    "top pass_i;\n"
)


class TestCacheStatsSnapshot:
    def test_snapshot_matches_as_dict_when_quiescent(self):
        cache = CompilationCache(stage_caching=False)
        result = compile_sources([GOOD], cache=cache)
        assert result is not None
        assert cache.stats_snapshot() == cache.stats.as_dict()

    def test_concurrent_readers_never_see_torn_counters(self):
        """Writers churn get/put; every snapshot must be internally
        consistent: each lookup bumps exactly one of hits/misses *before*
        the next lookup starts (both mutations happen under the cache
        lock), so hits + misses can never exceed the writers' progress nor
        run backwards between snapshots."""
        cache = CompilationCache(max_entries=4, stage_caching=False)
        result = compile_sources([GOOD], cache=None)
        rounds = 300
        writers = 4
        progress = [0] * writers

        def writer(index: int) -> None:
            for round_index in range(rounds):
                key = f"key-{index}-{round_index % 8}"
                if cache.get(key) is None:
                    cache.put(key, result, disk=False)
                progress[index] += 1

        stop = threading.Event()
        snapshots: list[dict[str, int]] = []
        failures: list[str] = []

        def reader() -> None:
            previous: dict[str, int] | None = None
            while not stop.is_set():
                snapshot = cache.stats_snapshot()
                lookups = snapshot["hits"] + snapshot["misses"]
                done_after = sum(progress)  # only grows
                if lookups > done_after + writers:
                    failures.append(
                        f"snapshot counts {lookups} lookups but writers "
                        f"completed at most {done_after + writers}"
                    )
                    return
                if previous is not None:
                    for key, value in previous.items():
                        if snapshot[key] < value:
                            failures.append(f"counter {key} went backwards")
                            return
                previous = snapshot
                snapshots.append(snapshot)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(writers)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers + threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
            assert not thread.is_alive()

        assert not failures, failures
        assert snapshots, "readers never snapshotted"
        final = cache.stats_snapshot()
        # Exact totals: every writer did `rounds` lookups; every miss stored.
        assert final["hits"] + final["misses"] == writers * rounds
        assert final["stores"] == final["misses"]

    def test_stage_cache_snapshot_under_churn(self):
        cache = CompilationCache()
        second = (
            "type other_t = Stream(Bit(4));\n"
            "streamlet other_s { i: other_t in, o: other_t out, }\n"
            "external impl other_i of other_s;\n"
        )
        sources = [(GOOD, "a.td"), (second, "b.td")]

        def compile_loop() -> None:
            for _ in range(10):
                cache.stages.compile(sources, {"include_stdlib": False})

        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            previous = None
            while not stop.is_set():
                snapshot = cache.stages.stats_snapshot()
                if previous is not None:
                    for key, value in previous.items():
                        if snapshot[key] < value:
                            failures.append(f"stage counter {key} went backwards")
                            return
                previous = snapshot

        workers = [threading.Thread(target=compile_loop) for _ in range(3)]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=120)
            assert not thread.is_alive()
        stop.set()
        watcher.join(timeout=60)
        assert not watcher.is_alive()
        assert not failures, failures
        final = cache.stages.stats_snapshot()
        assert final["parse_hits"] + final["parse_misses"] == 3 * 10 * len(sources)


class TestWorkspaceStats:
    def test_stats_shape_and_counts(self):
        workspace = Workspace()
        workspace.add_design("good", [(GOOD, "g.td")])
        workspace.add_design("broken", [("type ?!", "b.td")])
        workspace.add_design("pending", [(GOOD.replace("pass", "p2"), "p.td")])
        workspace.result("good")
        try:
            workspace.result("broken")
        except Exception:
            pass
        stats = workspace.stats()
        assert stats["designs"] == {"total": 3, "fresh": 1, "stale": 1, "error": 1}
        assert stats["cache"] is not None and stats["stage_cache"] is not None
        # The cache sections are the locked snapshots (same shape).
        assert set(stats["cache"]) == set(workspace.cache.stats.as_dict())

    def test_stats_without_cache(self):
        workspace = Workspace(cache=None)
        workspace.add_design("d", [(GOOD, "d.td")])
        stats = workspace.stats()
        assert stats["cache"] is None and stats["stage_cache"] is None

    def test_report_uses_snapshots(self):
        workspace = Workspace()
        workspace.add_design("d", [(GOOD, "d.td")])
        workspace.result("d")
        report = workspace.report()
        assert report["cache"] == workspace.cache.stats_snapshot()
        assert report["stage_cache"] == workspace.cache.stages.stats_snapshot()

    def test_duck_typed_cache_without_snapshot_still_reports(self):
        class DuckCache:
            def __init__(self) -> None:
                self.calls = 0

            def key_for(self, sources, options):
                from repro.pipeline.cache import fingerprint_sources

                return fingerprint_sources(sources, options)

            def get(self, key):
                return None

            def put(self, key, result):
                self.calls += 1

        workspace = Workspace(cache=DuckCache())
        workspace.add_design("d", [(GOOD, "d.td")])
        workspace.result("d")
        stats = workspace.stats()
        assert stats["cache"] is None  # no stats attribute: reported as absent
        assert stats["designs"]["fresh"] == 1

    def test_server_stats_under_concurrent_compiles(self):
        """The server-side regression: `stats` answered while other pool
        threads compile must never raise or return torn workspace counters."""
        service = CompileService(jobs=4)
        try:
            designs = []
            for index in range(4):
                name = f"d{index}"
                text = GOOD.replace("pass", f"pass{index}")
                service.handle_sync(
                    {"method": "open_design",
                     "params": {"design": name, "files": {f"{name}.td": text}}}
                )
                designs.append(name)

            failures: list[str] = []
            stop = threading.Event()

            def stats_loop() -> None:
                while not stop.is_set():
                    envelope = service.handle_sync({"method": "stats"})
                    if not envelope["ok"]:
                        failures.append(str(envelope))
                        return
                    counts = envelope["result"]["workspace"]["designs"]
                    if counts["total"] != len(designs):
                        failures.append(f"lost designs: {counts}")
                        return

            def compile_loop() -> None:
                for _ in range(5):
                    for name in designs:
                        service.handle_sync(
                            {"method": "get_ir", "params": {"design": name}}
                        )
                        service.handle_sync(
                            {"method": "update_file",
                             "params": {"design": name, "filename": f"{name}.td",
                                        "text": GOOD.replace("pass", f"pass{name}")}}
                        )

            watcher = threading.Thread(target=stats_loop)
            workers = [threading.Thread(target=compile_loop) for _ in range(2)]
            watcher.start()
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=120)
                assert not thread.is_alive()
            stop.set()
            watcher.join(timeout=60)
            assert not watcher.is_alive()
            assert not failures, failures
        finally:
            service.close()
