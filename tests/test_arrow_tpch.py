"""Unit tests for the TPC-H substrate: schemas, data generator, golden queries."""

import numpy as np
import pytest

from repro.arrow.tpch import (
    DATE_1994_01_01,
    DATE_1995_01_01,
    TPCH_SCHEMAS,
    generate_tpch_data,
    golden_q1,
    golden_q3,
    golden_q5,
    golden_q6,
    golden_q19,
    joined_table_for,
)


@pytest.fixture(scope="module")
def tables():
    return generate_tpch_data(400, seed=123)


class TestSchemas:
    def test_expected_tables_present(self):
        assert set(TPCH_SCHEMAS) == {
            "lineitem", "part", "orders", "customer", "supplier", "nation", "region",
        }

    def test_lineitem_columns(self):
        names = TPCH_SCHEMAS["lineitem"].field_names()
        for column in ("l_orderkey", "l_quantity", "l_extendedprice", "l_discount",
                       "l_returnflag", "l_linestatus", "l_shipdate", "l_shipmode"):
            assert column in names


class TestGenerator:
    def test_row_counts(self, tables):
        assert tables["lineitem"].num_rows == 400
        assert tables["part"].num_rows >= 20
        assert tables["nation"].num_rows == 25
        assert tables["region"].num_rows == 5

    def test_deterministic_for_seed(self):
        a = generate_tpch_data(50, seed=9)
        b = generate_tpch_data(50, seed=9)
        assert np.array_equal(a["lineitem"]["l_extendedprice"], b["lineitem"]["l_extendedprice"])

    def test_different_seeds_differ(self):
        a = generate_tpch_data(50, seed=1)
        b = generate_tpch_data(50, seed=2)
        assert not np.array_equal(a["lineitem"]["l_extendedprice"], b["lineitem"]["l_extendedprice"])

    def test_schema_conformance(self, tables):
        for name, schema in TPCH_SCHEMAS.items():
            for field in schema.fields:
                assert field.name in tables[name], f"{name}.{field.name} missing"

    def test_value_ranges(self, tables):
        lineitem = tables["lineitem"]
        assert float(lineitem["l_discount"].min()) >= 0.0
        assert float(lineitem["l_discount"].max()) <= 0.10
        assert int(lineitem["l_shipdate"].min()) >= 0
        assert float(lineitem["l_quantity"].min()) >= 1

    def test_foreign_keys_resolve(self, tables):
        assert int(tables["lineitem"]["l_partkey"].max()) <= tables["part"].num_rows
        assert int(tables["orders"]["o_custkey"].max()) <= tables["customer"].num_rows


class TestJoinedProjections:
    def test_q19_projection_aligned_with_lineitem(self, tables):
        joined = joined_table_for("q19", tables)
        assert joined.num_rows == tables["lineitem"].num_rows
        # The join key columns must agree row by row (it is an equi-join).
        assert np.array_equal(joined["l_partkey"], joined["p_partkey"])

    def test_q3_projection_columns(self, tables):
        joined = joined_table_for("q3", tables)
        assert {"l_orderkey", "o_orderdate", "c_mktsegment"} <= set(joined.column_names())

    def test_q5_projection_region_names(self, tables):
        joined = joined_table_for("q5", tables)
        assert set(np.unique(joined["r_name"])) <= {
            "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST",
        }

    def test_unknown_projection_rejected(self, tables):
        with pytest.raises(KeyError):
            joined_table_for("q42", tables)


class TestGoldenQueries:
    def test_q6_matches_manual_mask(self, tables):
        lineitem = tables["lineitem"]
        mask = (
            (lineitem["l_shipdate"] >= DATE_1994_01_01)
            & (lineitem["l_shipdate"] < DATE_1995_01_01)
            & (lineitem["l_discount"] >= 0.05)
            & (lineitem["l_discount"] <= 0.07)
            & (lineitem["l_quantity"] < 24)
        )
        expected = float((lineitem["l_extendedprice"][mask] * lineitem["l_discount"][mask]).sum())
        assert golden_q6(tables) == pytest.approx(expected)

    def test_q1_group_totals_consistent(self, tables):
        result = golden_q1(tables)
        lineitem = tables["lineitem"]
        cutoff_rows = int((lineitem["l_shipdate"] <= 2436).sum())
        assert sum(group["count_order"] for group in result.values()) == cutoff_rows
        for group in result.values():
            assert group["sum_disc_price"] <= group["sum_base_price"]

    def test_q3_revenues_positive(self, tables):
        result = golden_q3(tables)
        assert all(revenue > 0 for revenue in result.values())

    def test_q5_nations_are_strings(self, tables):
        result = golden_q5(tables)
        assert all(isinstance(name, str) for name in result)

    def test_q19_non_negative(self, tables):
        assert golden_q19(tables) >= 0.0

    def test_golden_results_depend_on_parameters(self, tables):
        assert golden_q6(tables, quantity_max=100.0) >= golden_q6(tables)
        assert golden_q1(tables, cutoff=100) != golden_q1(tables)
