"""Unit tests for error types and the diagnostic sink."""

import pytest

from repro.errors import (
    Diagnostic,
    DiagnosticSink,
    TydiDRCError,
    TydiError,
    TydiEvaluationError,
    TydiSyntaxError,
)
from repro.utils.source import SourceFile


class TestErrors:
    def test_stage_names(self):
        assert TydiSyntaxError("x").stage == "parse"
        assert TydiDRCError("x").stage == "drc"
        assert TydiEvaluationError("x").stage == "evaluate"

    def test_message_without_span(self):
        assert TydiError("boom").render() == "boom"

    def test_message_with_span(self):
        span = SourceFile("abc", "f.td").span(0, 1)
        error = TydiSyntaxError("bad token", span)
        assert "f.td:1:1" in str(error)

    def test_errors_are_exceptions(self):
        with pytest.raises(TydiError):
            raise TydiDRCError("failed")


class TestDiagnosticSink:
    def test_counts(self):
        sink = DiagnosticSink()
        sink.info("parse", "ok")
        sink.warning("drc", "odd")
        sink.error("drc", "bad")
        assert len(sink) == 3
        assert len(sink.warnings) == 1
        assert len(sink.errors) == 1
        assert sink.has_errors()

    def test_no_errors(self):
        sink = DiagnosticSink()
        sink.info("x", "y")
        assert not sink.has_errors()

    def test_extend(self):
        a, b = DiagnosticSink(), DiagnosticSink()
        a.info("s", "one")
        b.error("s", "two")
        a.extend(b)
        assert len(a) == 2
        assert a.has_errors()

    def test_iteration_and_str(self):
        sink = DiagnosticSink()
        sink.warning("sugaring", "inserted duplicator")
        items = list(sink)
        assert isinstance(items[0], Diagnostic)
        assert "sugaring" in str(items[0])
