"""Unit tests for the Tydi-IR data model."""

import pytest

from repro.errors import TydiBackendError, TydiTypeError
from repro.ir.model import (
    ClockDomain,
    Connection,
    Implementation,
    Instance,
    Port,
    PortDirection,
    PortRef,
    Project,
    Streamlet,
)
from repro.spec.logical_types import Bit, Stream


def byte_stream():
    return Stream.new(Bit(8), dimension=1)


def simple_project():
    project = Project(name="demo")
    inner = Streamlet("inner_s", [
        Port("x", byte_stream(), PortDirection.IN),
        Port("y", byte_stream(), PortDirection.OUT),
    ])
    top = Streamlet("top_s", [
        Port("i", byte_stream(), PortDirection.IN),
        Port("o", byte_stream(), PortDirection.OUT),
    ])
    project.add_streamlet(inner)
    project.add_streamlet(top)
    inner_impl = Implementation("inner_i", "inner_s", external=True)
    project.add_implementation(inner_impl)
    top_impl = Implementation("top_i", "top_s")
    top_impl.add_instance(Instance("u", "inner_i"))
    top_impl.add_connection(Connection(PortRef("i"), PortRef("x", "u")))
    top_impl.add_connection(Connection(PortRef("y", "u"), PortRef("o")))
    project.add_implementation(top_impl)
    project.top = "top_i"
    return project


class TestPort:
    def test_requires_logical_type(self):
        with pytest.raises(TydiTypeError):
            Port("p", "not a type", PortDirection.IN)

    def test_name_is_sanitized(self):
        port = Port("bad name!", byte_stream(), PortDirection.OUT)
        assert port.name == "bad_name"

    def test_direction_flip(self):
        assert PortDirection.IN.flipped() is PortDirection.OUT


class TestStreamlet:
    def test_duplicate_ports_rejected(self):
        with pytest.raises(TydiBackendError):
            Streamlet("s", [
                Port("a", byte_stream(), PortDirection.IN),
                Port("a", byte_stream(), PortDirection.OUT),
            ])

    def test_port_lookup(self):
        streamlet = Streamlet("s", [Port("a", byte_stream(), PortDirection.IN)])
        assert streamlet.port("a").direction is PortDirection.IN
        with pytest.raises(TydiBackendError):
            streamlet.port("missing")

    def test_inputs_outputs_split(self):
        streamlet = simple_project().streamlet("inner_s")
        assert [p.name for p in streamlet.inputs()] == ["x"]
        assert [p.name for p in streamlet.outputs()] == ["y"]


class TestPortRef:
    def test_parse_self_port(self):
        assert PortRef.parse("data") == PortRef("data")

    def test_parse_instance_port(self):
        assert PortRef.parse("adder.lhs") == PortRef("lhs", "adder")

    def test_str_roundtrip(self):
        assert str(PortRef.parse("a.b")) == "a.b"


class TestImplementation:
    def test_duplicate_instance_rejected(self):
        impl = Implementation("x", "s")
        impl.add_instance(Instance("u", "other"))
        with pytest.raises(TydiBackendError):
            impl.add_instance(Instance("u", "other"))

    def test_instance_lookup(self):
        impl = simple_project().implementation("top_i")
        assert impl.instance("u").implementation == "inner_i"
        assert impl.has_instance("u")
        assert not impl.has_instance("v")


class TestProject:
    def test_resolve_ports(self):
        project = simple_project()
        top = project.implementation("top_i")
        self_port = project.resolve_port(top, PortRef("i"))
        inner_port = project.resolve_port(top, PortRef("x", "u"))
        assert self_port.name == "i"
        assert inner_port.name == "x"

    def test_validate_passes(self):
        simple_project().validate()

    def test_validate_catches_unknown_instance_target(self):
        project = simple_project()
        project.implementation("top_i").instances[0].implementation = "ghost_i"
        with pytest.raises(TydiBackendError):
            project.validate()

    def test_validate_catches_bad_top(self):
        project = simple_project()
        project.top = "missing"
        with pytest.raises(TydiBackendError):
            project.validate()

    def test_implementation_requires_known_streamlet(self):
        project = Project()
        with pytest.raises(TydiBackendError):
            project.add_implementation(Implementation("x", "ghost_s"))

    def test_statistics(self):
        stats = simple_project().statistics()
        assert stats == {
            "streamlets": 2,
            "implementations": 2,
            "external_implementations": 1,
            "instances": 1,
            "connections": 2,
            "ports": 4,
        }

    def test_iterators(self):
        project = simple_project()
        assert len(list(project.iter_connections())) == 2
        assert len(list(project.iter_instances())) == 1

    def test_top_implementation_accessor(self):
        project = simple_project()
        assert project.top_implementation().name == "top_i"
        project.top = None
        with pytest.raises(TydiBackendError):
            project.top_implementation()

    def test_clock_domain_default(self):
        assert ClockDomain().name == "default"
