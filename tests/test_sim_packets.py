"""Unit tests for simulation packets."""

from hypothesis import given, strategies as st

from repro.sim.packets import Packet, packets_to_sequence, sequence_to_packets


class TestPacket:
    def test_closes_outermost(self):
        assert Packet(1, last=(False, True)).closes_outermost()
        assert not Packet(1, last=(True, False)).closes_outermost()
        assert not Packet(1).closes_outermost()

    def test_closes_dimension(self):
        packet = Packet(1, last=(True, False))
        assert packet.closes_dimension(0)
        assert not packet.closes_dimension(1)
        assert not packet.closes_dimension(5)

    def test_with_value_and_last(self):
        packet = Packet(1, last=(True,))
        assert packet.with_value(9).value == 9
        assert packet.with_value(9).last == (True,)
        assert packet.with_last([False]).last == (False,)


class TestSequenceConversion:
    def test_roundtrip(self):
        values = [3, 1, 4, 1, 5]
        packets = sequence_to_packets(values)
        assert packets_to_sequence(packets) == values

    def test_only_final_packet_closes(self):
        packets = sequence_to_packets([1, 2, 3], dimensions=2)
        assert all(not p.closes_outermost() for p in packets[:-1])
        assert packets[-1].last == (True, True)

    def test_empty_sequence_emits_close_packet(self):
        packets = sequence_to_packets([])
        assert len(packets) == 1
        assert packets[0].value is None
        assert packets[0].closes_outermost()
        assert packets_to_sequence(packets) == []

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=1, max_value=3))
    def test_roundtrip_property(self, values, dimensions):
        packets = sequence_to_packets(values, dimensions)
        assert packets_to_sequence(packets) == values
        assert packets[-1].closes_outermost()
