"""Golden tests: evaluate/sugar stages in isolation on hand-built ASTs.

The differential harness proves staged == monolithic end to end; these
tests pin down the *individual* stage functions by feeding a hand-built AST
(no parser involved) straight into :func:`repro.lang.compile.evaluate_stage`
and :func:`~repro.lang.compile.sugar_stage`, asserting the exact
duplicator/voider insertion counts of the paper's Figure 4 example
(``b0 = a + 10; b1 = a * 2``: one 2-channel duplicator for the doubly-used
``a``, one voider for the ``unused`` output).
"""

from __future__ import annotations

import pytest

from repro.errors import DiagnosticSink
from repro.lang import ast
from repro.lang.compile import (
    compile_project,
    drc_stage,
    evaluate_stage,
    sugar_stage,
)
from repro.utils.source import SourceLocation, SourceSpan

SPAN = SourceSpan("golden.td", SourceLocation(1, 1), SourceLocation(1, 2))


def _stream_of_bits(width: int) -> ast.StreamTypeExpr:
    return ast.StreamTypeExpr(
        SPAN,
        element=ast.BitTypeExpr(SPAN, width=ast.Literal(SPAN, value=width)),
        arguments=(("d", ast.Literal(SPAN, value=1)),),
    )


def _port(name: str, direction: str) -> ast.PortDecl:
    return ast.PortDecl(SPAN, name=name, type_expr=ast.NamedTypeExpr(SPAN, "num"), direction=direction)


def _external(name: str, streamlet: str) -> ast.ImplDecl:
    return ast.ImplDecl(
        SPAN, name=name, params=(), streamlet=streamlet, streamlet_args=(), body=(), external=True
    )


def _connect(src_owner, src_port, sink_owner, sink_port) -> ast.ConnectionStmt:
    return ast.ConnectionStmt(
        SPAN,
        source=ast.PortRefExpr(SPAN, port=src_port, owner=src_owner),
        sink=ast.PortRefExpr(SPAN, port=sink_port, owner=sink_owner),
    )


def figure4_unit(*, extra_consumers: int = 0) -> ast.SourceUnit:
    """The paper's Figure 4 design as a hand-built AST (no parser).

    ``extra_consumers`` adds further sinks on the shared ``a`` output so the
    inferred duplicator channel count can be asserted beyond Figure 4's two.
    """
    consumers = ["adder", "multiplier"] + [f"extra{i}" for i in range(extra_consumers)]
    demo_ports = tuple(_port(f"b{i}", "out") for i in range(len(consumers)))
    body: list[ast.ImplItem] = [ast.InstanceDecl(SPAN, name="source", target="producer_i")]
    impl_of = {"adder": "adder10_i", "multiplier": "doubler_i"}
    for name in consumers:
        body.append(ast.InstanceDecl(SPAN, name=name, target=impl_of.get(name, "adder10_i")))
    for index, name in enumerate(consumers):
        body.append(_connect("source", "a", name, "value"))
        body.append(_connect(name, "result", None, f"b{index}"))
    declarations: list[ast.Declaration] = [
        ast.TypeAliasDecl(SPAN, name="num", type_expr=_stream_of_bits(32)),
        ast.StreamletDecl(
            SPAN, name="producer_s", params=(), ports=(_port("a", "out"), _port("unused", "out"))
        ),
        _external("producer_i", "producer_s"),
        ast.StreamletDecl(
            SPAN, name="unary_op_s", params=(), ports=(_port("value", "in"), _port("result", "out"))
        ),
        _external("adder10_i", "unary_op_s"),
        _external("doubler_i", "unary_op_s"),
        ast.StreamletDecl(SPAN, name="demo_s", params=(), ports=demo_ports),
        ast.ImplDecl(
            SPAN, name="demo_i", params=(), streamlet="demo_s", streamlet_args=(), body=tuple(body)
        ),
        ast.TopDecl(SPAN, name="demo_i"),
    ]
    return ast.SourceUnit(package="golden", declarations=declarations, filename="golden.td")


class TestEvaluateStageGolden:
    def test_evaluates_handbuilt_ast_to_flat_design(self):
        diagnostics = DiagnosticSink()
        project, entry = evaluate_stage([figure4_unit()], diagnostics, project_name="golden")
        assert entry.name == "evaluate"
        demo = project.implementation("demo_i")
        assert len(demo.instances) == 3
        assert len(demo.connections) == 4
        assert project.top == "demo_i"

    def test_handbuilt_ast_matches_parsed_source(self):
        """The same design written as text compiles to the same flat shape."""
        source = """
        type num = Stream(Bit(32), d=1);
        streamlet producer_s { a: num out, unused: num out, }
        external impl producer_i of producer_s;
        streamlet unary_op_s { value: num in, result: num out, }
        external impl adder10_i of unary_op_s;
        external impl doubler_i of unary_op_s;
        streamlet demo_s { b0: num out, b1: num out, }
        impl demo_i of demo_s {
            instance source(producer_i),
            instance adder(adder10_i),
            instance multiplier(doubler_i),
            source.a => adder.value,
            source.a => multiplier.value,
            adder.result => b0,
            multiplier.result => b1,
        }
        top demo_i;
        """
        diagnostics = DiagnosticSink()
        handbuilt, _ = evaluate_stage([figure4_unit()], diagnostics, project_name="design")
        parsed = compile_project(source, include_stdlib=False, sugaring=False, run_drc=False)
        assert handbuilt.statistics() == parsed.project.statistics()

    def test_evaluate_stage_detail_line(self):
        diagnostics = DiagnosticSink()
        _, entry = evaluate_stage([figure4_unit()], diagnostics)
        assert "3 instance(s)" in entry.detail
        assert "4 connection(s)" in entry.detail


class TestSugarStageGolden:
    def test_figure4_insertion_counts(self):
        """Figure 4: exactly one 2-channel duplicator and one voider."""
        diagnostics = DiagnosticSink()
        project, _ = evaluate_stage([figure4_unit()], diagnostics)
        report, entry = sugar_stage(project, diagnostics)
        assert entry.name == "sugaring"
        assert report.duplicators_inserted == 1
        assert report.voiders_inserted == 1
        assert entry.detail == "sugaring inserted 1 duplicator(s) and 1 voider(s)"

        (dup,) = [a for a in report.actions if a.kind == "duplicator"]
        assert dup.channels == 2
        assert dup.implementation == "demo_i"
        assert dup.source == "source.a"
        (void,) = [a for a in report.actions if a.kind == "voider"]
        assert void.source == "source.unused"

        # The rewritten design passes a strict DRC (point-to-point restored).
        drc_report, _ = drc_stage(project, diagnostics, strict=True)
        assert drc_report.passed()

    @pytest.mark.parametrize("extra_consumers", [1, 2, 3])
    def test_duplicator_channels_match_fanout(self, extra_consumers):
        """The inferred channel count follows the number of sinks exactly."""
        diagnostics = DiagnosticSink()
        project, _ = evaluate_stage([figure4_unit(extra_consumers=extra_consumers)], diagnostics)
        report, _ = sugar_stage(project, diagnostics)
        (dup,) = [a for a in report.actions if a.kind == "duplicator"]
        assert dup.channels == 2 + extra_consumers
        assert report.voiders_inserted == 1

    def test_sugar_stage_emits_diagnostics(self):
        diagnostics = DiagnosticSink()
        project, _ = evaluate_stage([figure4_unit()], diagnostics)
        before = len(diagnostics)
        sugar_stage(project, diagnostics)
        messages = [d.message for d in diagnostics][before:]
        assert any("duplicator" in m for m in messages)
        assert any("voider" in m for m in messages)
