"""Tests that every TPC-H query design compiles, passes the DRC and has sane LoC."""

import pytest

from repro.queries import ALL_QUERIES, QUERIES
from repro.stdlib.source import stdlib_loc


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_compiles_and_passes_drc(self, name, compiled_queries):
        result = compiled_queries[name]
        assert result.drc is not None and result.drc.passed()

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_top_is_set(self, name, compiled_queries):
        assert compiled_queries[name].project.top is not None

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_design_has_instances_and_connections(self, name, compiled_queries):
        stats = compiled_queries[name].project.statistics()
        assert stats["instances"] >= 5
        assert stats["connections"] >= 10

    def test_q19_expands_clause_hardware_via_for_loops(self, compiled_queries):
        project = compiled_queries["q19"].project
        top = project.implementation("q19_i")
        brand_comparators = [i for i in top.instances if i.name.startswith("cmp_brand")]
        container_comparators = [i for i in top.instances if i.name.startswith("cmp_container")]
        assert len(brand_comparators) == 3
        assert len(container_comparators) == 12

    def test_q1_sugared_and_manual_variants_equivalent(self, compiled_queries):
        """The sugared and hand-desugared Q1 designs have the same component mix."""
        sugared = compiled_queries["q1"].project
        manual = compiled_queries["q1_no_sugar"].project

        def component_histogram(project):
            histogram = {}
            top = project.implementation("q1_i")
            for instance in top.instances:
                impl = project.implementation(instance.implementation)
                template = impl.metadata.get("template") or impl.metadata.get("primitive") or impl.name
                histogram[template] = histogram.get(template, 0) + 1
            return histogram

        sugared_hist = component_histogram(sugared)
        manual_hist = component_histogram(manual)
        # Same functional components...
        for key in ("group_sum_i", "group_count_i", "filter_i", "multiplier_i", "subtractor_i"):
            assert sugared_hist.get(key) == manual_hist.get(key)
        # ...and the same number of duplicators/voiders, whether inserted
        # automatically (primitive kind) or written by hand (template name).
        sugared_dups = sugared_hist.get("duplicator", 0) + sugared_hist.get("duplicator_i", 0)
        manual_dups = manual_hist.get("duplicator", 0) + manual_hist.get("duplicator_i", 0)
        assert sugared_dups == manual_dups
        sugared_voids = sugared_hist.get("voider", 0) + sugared_hist.get("voider_i", 0)
        manual_voids = manual_hist.get("voider", 0) + manual_hist.get("voider_i", 0)
        assert sugared_voids == manual_voids


class TestLocAccounting:
    @pytest.fixture(scope="class")
    def all_loc(self):
        return {query.name: query.loc() for query in ALL_QUERIES}

    def test_totals_add_up(self, all_loc):
        for loc in all_loc.values():
            assert loc.total_tydi == loc.query_logic + loc.fletcher + loc.stdlib
            assert loc.stdlib == stdlib_loc()

    def test_ratios_consistent(self, all_loc):
        for loc in all_loc.values():
            assert loc.ratio_query == pytest.approx(loc.vhdl / loc.query_logic)
            assert loc.ratio_total == pytest.approx(loc.vhdl / loc.total_tydi)

    def test_vhdl_much_larger_than_tydi(self, all_loc):
        """The headline claim: generated VHDL dwarfs the Tydi-lang query logic."""
        for loc in all_loc.values():
            assert loc.ratio_query > 10
            assert loc.ratio_total > 3

    def test_sugaring_saves_query_loc(self, all_loc):
        assert all_loc["q1"].query_logic < all_loc["q1_no_sugar"].query_logic

    def test_sugaring_does_not_change_vhdl(self, all_loc):
        # Both variants describe the same hardware.
        assert all_loc["q1"].vhdl == pytest.approx(all_loc["q1_no_sugar"].vhdl, rel=0.05)

    def test_raw_sql_is_much_smaller_than_query_logic(self, all_loc):
        for loc in all_loc.values():
            assert loc.raw_sql < loc.query_logic

    def test_q19_is_the_largest_design(self, all_loc):
        assert all_loc["q19"].vhdl == max(loc.vhdl for loc in all_loc.values())
