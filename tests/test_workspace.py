"""Unit tests for the :class:`repro.workspace.Workspace` session API.

The session *differential* (a random mutation history ends byte-identical
to a fresh one-shot compile) lives in ``tests/test_workspace_properties.py``;
these tests pin down the session mechanics: the design store, query
memoisation and invalidation, the cache stack wiring, ``compile_all``,
thread safety, and the deprecated driver facades.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import TydiDRCError, TydiWorkspaceError
from repro.lang.compile import CompileOptions, compile_sources
from repro.pipeline import BatchCompiler, CompilationCache, IncrementalCompiler, run_jobs
from repro.pipeline.batch import CompileJob
from repro.testing import build_chain_design
from repro.workspace import Workspace

SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet echo_s { i: byte_t in, o: byte_t out, }
impl echo_i of echo_s { i => o, }
top echo_i;
"""

OTHER = SOURCE.replace("Bit(8)", "Bit(16)")

BROKEN = "streamlet s { i: Mystery in, }\nimpl im of s {}\ntop im;"


def make_workspace(**kwargs) -> Workspace:
    return Workspace(**kwargs)


class TestDesignStore:
    def test_add_and_query(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        assert "echo" in ws and len(ws) == 1
        assert ws.design_names == ["echo"]
        assert "impl echo_i" in ws.ir("echo")

    def test_files_accepts_pairs_and_mapping_and_bare(self):
        ws = make_workspace()
        ws.add_design("pairs", [(SOURCE, "a.td")])
        ws.add_design("mapping", {"a.td": SOURCE})
        ws.add_design("bare", [SOURCE])
        assert ws.files("pairs") == {"a.td": SOURCE}
        assert ws.files("mapping") == {"a.td": SOURCE}
        assert ws.files("bare") == {"source_0.td": SOURCE}

    def test_duplicate_design_rejected(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        with pytest.raises(TydiWorkspaceError, match="already exists"):
            ws.add_design("echo", {"a.td": OTHER})

    def test_replace_design(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        first = ws.result("echo")
        ws.add_design("echo", {"a.td": OTHER}, replace=True)
        assert "Bit<16>" in ws.ir("echo") or "16" in ws.ir("echo")
        assert ws.result("echo") is not first

    def test_replace_with_identical_content_keeps_memo(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        first = ws.result("echo")
        ws.add_design("echo", {"a.td": SOURCE}, replace=True)
        assert ws.result("echo") is first

    def test_remove_design(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        ws.remove_design("echo")
        assert "echo" not in ws
        with pytest.raises(TydiWorkspaceError, match="no design named 'echo'"):
            ws.result("echo")
        with pytest.raises(TydiWorkspaceError, match="no design named"):
            ws.remove_design("echo")

    def test_unknown_design_error_names_known_ones(self):
        ws = make_workspace()
        ws.add_design("known", {"a.td": SOURCE})
        with pytest.raises(TydiWorkspaceError, match="known"):
            ws.result("unknown")

    def test_update_file_and_remove_file(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        ws.update_file("echo", "extra.td", "const answer = 42;")
        assert sorted(ws.files("echo")) == ["a.td", "extra.td"]
        ws.remove_file("echo", "extra.td")
        assert sorted(ws.files("echo")) == ["a.td"]
        with pytest.raises(TydiWorkspaceError, match="has no file"):
            ws.remove_file("echo", "extra.td")

    def test_files_returns_a_copy(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        ws.files("echo")["a.td"] = "tampered"
        assert ws.files("echo")["a.td"] == SOURCE

    def test_empty_design_name_rejected(self):
        ws = make_workspace()
        with pytest.raises(TydiWorkspaceError, match="non-empty"):
            ws.add_design("", {"a.td": SOURCE})


class TestQueries:
    def test_result_is_memoised(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        assert ws.result("echo") is ws.result("echo")

    def test_edit_invalidates_and_identical_rewrite_does_not(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        first = ws.result("echo")
        ws.update_file("echo", "a.td", SOURCE)  # byte-identical rewrite
        assert ws.result("echo") is first
        ws.update_file("echo", "a.td", SOURCE + "// edit\n")
        assert ws.result("echo") is not first

    def test_option_change_invalidates(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        first = ws.result("echo")
        ws.set_options("echo", CompileOptions(sugaring=False))
        second = ws.result("echo")
        assert second is not first
        assert "sugaring" not in second.stage_names()

    def test_is_fresh_and_report_status(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        assert not ws.is_fresh("echo")
        assert ws.report()["designs"]["echo"]["status"] == "stale"
        ws.result("echo")
        assert ws.is_fresh("echo")
        assert ws.report()["designs"]["echo"]["status"] == "fresh"
        ws.update_file("echo", "a.td", OTHER)
        assert not ws.is_fresh("echo")

    def test_diagnostics_query(self):
        source = """
        type t = Stream(Bit(4), d=1);
        streamlet wide_s { a: t out, b: t out, }
        external impl wide_i of wide_s;
        streamlet top_s { o: t out, }
        impl top_i of top_s { instance w(wide_i), w.a => o, }
        top top_i;
        """
        ws = make_workspace()
        ws.add_design("d", {"a.td": source})
        assert any("voider" in d.message for d in ws.diagnostics("d"))

    def test_outputs_for_configured_target(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE}, CompileOptions(targets=("vhdl",)))
        files = ws.outputs("echo", "vhdl")
        assert any(name.endswith(".vhd") for name in files)
        # Served straight off the compiled result.
        assert files is ws.result("echo").outputs["vhdl"]

    def test_outputs_lazy_target_is_memoised_and_invalidated(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        assert ws.result("echo").outputs == {}
        dot = ws.outputs("echo", "dot")
        assert "".join(dot.values()).startswith("digraph")
        assert ws.outputs("echo", "dot") is dot  # memoised
        ws.update_file("echo", "a.td", OTHER)
        assert ws.outputs("echo", "dot") is not dot

    def test_outputs_honour_backend_options(self):
        ws = make_workspace()
        ws.add_design(
            "echo",
            {"a.td": SOURCE},
            CompileOptions(backend_options={"dot": {"rankdir": "TB"}}),
        )
        dot = "".join(ws.outputs("echo", "dot").values())
        assert 'rankdir="TB"' in dot

    def test_error_is_memoised_and_retried_after_fix(self):
        cache = CompilationCache()
        ws = make_workspace(cache=cache)
        ws.add_design("bad", {"a.td": BROKEN})
        with pytest.raises(Exception, match="Mystery"):
            ws.result("bad")
        misses = cache.stats.misses
        with pytest.raises(Exception, match="Mystery"):
            ws.result("bad")  # re-raised from the memo, no recompile
        assert cache.stats.misses == misses
        assert ws.report()["designs"]["bad"]["status"] == "error"
        assert ws.cached_result("bad") is None
        ws.update_file("bad", "a.td", SOURCE)
        assert "impl echo_i" in ws.ir("bad")

    def test_strict_drc_error_propagates(self):
        source = """
        type t = Stream(Bit(4), d=1);
        streamlet wide_s { a: t out, b: t out, }
        external impl wide_i of wide_s;
        streamlet top_s { o: t out, }
        impl top_i of top_s { instance w(wide_i), w.a => o, }
        top top_i;
        """
        ws = make_workspace(options=CompileOptions(sugaring=False))
        ws.add_design("d", {"a.td": source})
        with pytest.raises(TydiDRCError):
            ws.result("d")

    def test_invalidate_forces_recompute_but_keeps_cache(self):
        cache = CompilationCache()
        ws = make_workspace(cache=cache)
        ws.add_design("echo", {"a.td": SOURCE})
        first = ws.result("echo")
        ws.invalidate("echo")
        again = ws.result("echo")
        assert again is first  # served by the whole-result cache
        assert cache.stats.hits >= 1


class TestCacheStack:
    def test_default_workspace_owns_a_stage_cache(self):
        ws = make_workspace()
        assert ws.cache is not None and ws.cache.stages is not None

    def test_explicit_none_disables_caching(self):
        ws = make_workspace(cache=None)
        assert ws.cache is None
        ws.add_design("echo", {"a.td": SOURCE})
        assert "impl echo_i" in ws.ir("echo")

    def test_cache_dir_persists_across_sessions(self, tmp_path):
        first = make_workspace(cache_dir=tmp_path / "cache")
        first.add_design("echo", {"a.td": SOURCE})
        cold = first.result("echo")

        second = make_workspace(cache_dir=tmp_path / "cache")
        second.add_design("echo", {"a.td": SOURCE})
        warm = second.result("echo")
        assert second.cache.stats.disk_hits == 1
        assert warm.ir_text() == cold.ir_text()

    def test_one_file_edit_reparses_one_file(self):
        ws = make_workspace()
        sources = build_chain_design(6)  # 7 files
        ws.add_design("chain", sources)
        ws.result("chain")
        stats = ws.cache.stages.stats
        assert stats.parse_misses == len(sources)
        text, filename = sources[2]
        ws.update_file("chain", filename, text + "// tweak\n")
        ws.result("chain")
        assert stats.parse_misses == len(sources) + 1
        assert stats.parse_hits >= len(sources) - 1

    def test_max_cache_mb_requires_cache_dir(self):
        with pytest.raises(TydiWorkspaceError, match="requires cache_dir"):
            make_workspace(max_cache_mb=64)
        with pytest.raises(TydiWorkspaceError, match=">= 0"):
            make_workspace(cache_dir="x", max_cache_mb=-1)

    def test_cache_and_cache_dir_conflict(self):
        with pytest.raises(TydiWorkspaceError, match="not both"):
            make_workspace(cache=CompilationCache(), cache_dir="x")

    def test_shim_equivalence_with_compile_sources(self):
        ws = make_workspace(cache=None)
        ws.add_design("echo", {"a.td": SOURCE}, CompileOptions(targets=("ir", "dot")))
        session = ws.result("echo")
        oneshot = compile_sources(
            [(SOURCE, "a.td")], options=CompileOptions(targets=("ir", "dot"))
        )
        assert session.ir_text() == oneshot.ir_text()
        assert [str(s) for s in session.stages] == [str(s) for s in oneshot.stages]
        assert session.outputs == oneshot.outputs


class TestCompileAll:
    def test_compiles_everything_then_reuses(self):
        ws = make_workspace()
        ws.add_design("a", {"a.td": SOURCE})
        ws.add_design("b", {"b.td": OTHER})
        report = ws.compile_all()
        assert sorted(report.compiled) == ["a", "b"] and report.ok
        assert report.batch is not None and len(report.batch) == 2
        again = ws.compile_all()
        assert again.compiled == [] and sorted(again.reused) == ["a", "b"]
        assert again.results["a"] is report.results["a"]

    def test_failure_is_isolated_and_retried(self):
        ws = make_workspace()
        ws.add_design("good", {"a.td": SOURCE})
        ws.add_design("bad", {"b.td": BROKEN})
        report = ws.compile_all()
        assert not report.ok and "Mystery" in report.failed["bad"]
        assert report.compiled == ["good"]
        again = ws.compile_all()
        assert again.reused == ["good"] and "bad" in again.failed

    def test_file_granularity_reporting(self):
        ws = make_workspace()
        sources = build_chain_design(3)
        ws.add_design("chain", sources)
        report = ws.compile_all()
        assert sorted(report.changed_files["chain"]) == sorted(fn for _, fn in sources)
        text, filename = sources[0]
        ws.update_file("chain", filename, text + "// edit\n")
        second = ws.compile_all()
        assert second.changed_files["chain"] == [filename]
        assert sorted(second.unchanged_files["chain"]) == sorted(
            fn for _, fn in sources[1:]
        )

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_produce_identical_ir(self, executor):
        serial = make_workspace(cache=None)
        concurrent = make_workspace(cache=None, executor=executor, jobs=2)
        for index, width in enumerate((2, 4, 8)):
            files = {"d.td": SOURCE.replace("Bit(8)", f"Bit({width})")}
            serial.add_design(f"d{index}", files)
            concurrent.add_design(f"d{index}", files)
        baseline = serial.compile_all(executor="serial")
        outcome = concurrent.compile_all()
        for name in baseline.results:
            assert outcome.results[name].ir_text() == baseline.results[name].ir_text()

    def test_empty_workspace(self):
        report = make_workspace().compile_all()
        assert report.ok and report.batch is not None and len(report.batch) == 0

    def test_queries_after_compile_all_hit_the_memo(self):
        cache = CompilationCache()
        ws = make_workspace(cache=cache)
        ws.add_design("echo", {"a.td": SOURCE})
        report = ws.compile_all()
        lookups = cache.stats.lookups
        assert ws.result("echo") is report.results["echo"]
        assert cache.stats.lookups == lookups  # memo, not cache


class TestThreadSafety:
    def test_concurrent_queries_across_designs(self):
        ws = make_workspace()
        for index in range(4):
            ws.add_design(f"d{index}", {"a.td": SOURCE.replace("Bit(8)", f"Bit({index + 1})")})
        errors: list[BaseException] = []

        def query(name: str) -> None:
            try:
                for _ in range(5):
                    assert "echo_s" in ws.ir(name)
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=query, args=(f"d{i % 4}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_edit_during_queries_settles_consistently(self):
        ws = make_workspace()
        ws.add_design("echo", {"a.td": SOURCE})
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    ws.result("echo")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        for round_index in range(10):
            ws.update_file("echo", "a.td", SOURCE + f"// round {round_index}\n")
        stop.set()
        thread.join()
        assert errors == []
        final = ws.result("echo")
        reference = compile_sources([(SOURCE + "// round 9\n", "a.td")])
        assert final.ir_text() == reference.ir_text()


class TestDeprecatedDrivers:
    def test_batch_compiler_warns_and_matches_engine(self):
        jobs = [
            CompileJob(name=f"w{width}", sources=((SOURCE.replace("Bit(8)", f"Bit({width})"), "d.td"),))
            for width in (2, 4)
        ]
        with pytest.warns(DeprecationWarning, match="BatchCompiler"):
            compiler = BatchCompiler(executor="serial")
        via_shim = compiler.compile_batch(jobs)
        direct = run_jobs(jobs, executor="serial")
        assert [entry.name for entry in via_shim] == [entry.name for entry in direct]
        for a, b in zip(via_shim.results, direct.results):
            assert a.result.ir_text() == b.result.ir_text()
            assert [str(s) for s in a.result.stages] == [str(s) for s in b.result.stages]

    def test_incremental_compiler_warns(self):
        with pytest.warns(DeprecationWarning, match="IncrementalCompiler"):
            inc = IncrementalCompiler()
        report = inc.update(
            [CompileJob(name="echo", sources=((SOURCE, "a.td"),))]
        )
        assert report.compiled == ["echo"]
        assert inc.result_for("echo") is report.results["echo"]

    def test_run_jobs_is_not_deprecated(self, recwarn):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            outcome = run_jobs(
                [CompileJob(name="echo", sources=((SOURCE, "a.td"),))], executor="serial"
            )
        assert outcome.ok
