"""Unit tests for the Tydi-IR testbench model."""

import pytest

from repro.ir.testbench import Testbench, TestbenchEvent, TestbenchVector


class TestTestbenchEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TestbenchEvent(time=-1, port="p", values=(1,))

    def test_last_flags_stored(self):
        event = TestbenchEvent(time=0, port="p", values=(3,), last=(True, False))
        assert event.last == (True, False)


class TestTestbenchVector:
    def test_events_kept_sorted(self):
        vector = TestbenchVector(port="p", direction="drive")
        vector.add(TestbenchEvent(time=5, port="p", values=(1,)))
        vector.add(TestbenchEvent(time=2, port="p", values=(2,)))
        assert [e.time for e in vector.events] == [2, 5]
        assert vector.last_time() == 5

    def test_port_mismatch_rejected(self):
        vector = TestbenchVector(port="p", direction="drive")
        with pytest.raises(ValueError):
            vector.add(TestbenchEvent(time=0, port="other", values=(1,)))


class TestTestbench:
    def make(self):
        tb = Testbench(implementation="adder_i")
        tb.drive(0, "lhs", [1])
        tb.drive(0, "rhs", [2])
        tb.drive(1, "lhs", [3], last=[True])
        tb.expect(2, "output", [3])
        tb.expect(3, "output", [7], last=[True])
        return tb

    def test_vectors_split_by_direction(self):
        tb = self.make()
        assert {v.port for v in tb.drive_vectors()} == {"lhs", "rhs"}
        assert {v.port for v in tb.expect_vectors()} == {"output"}

    def test_duration(self):
        assert self.make().duration() == 4

    def test_emit_contains_events(self):
        text = self.make().emit()
        assert text.startswith("testbench adder_i for adder_i {")
        assert "@0 drive lhs [1];" in text
        assert "@3 expect output [7] last=1;" in text

    def test_emit_clock_period(self):
        tb = Testbench(implementation="x", clock_period_ns=4.0)
        assert "clock_period: 4.0ns;" in tb.emit()
