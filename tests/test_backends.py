"""Unit tests for the pluggable backend architecture (repro.backends)."""

import pytest

from repro.backends import (
    Backend,
    BackendOptions,
    DotBackend,
    DotBackendOptions,
    available_backends,
    backend_class,
    get_backend,
    implementation_fingerprint,
    register_backend,
    unregister_backend,
)
from repro.errors import TydiBackendError
from repro.lang.compile import compile_project, compile_sources
from repro.testing import build_chain_design


SOURCE = """
type byte_t = Stream(Bit(8), d=1);
streamlet stage_s { input: byte_t in, output: byte_t out, }
external impl stage_i of stage_s;
streamlet top_s { i: byte_t in, o: byte_t out, }
impl top_i of top_s {
    instance a(stage_i),
    instance b(stage_i),
    i => a.input,
    a.output => b.input,
    b.output => o,
}
top top_i;
"""


@pytest.fixture(scope="module")
def project():
    return compile_project(SOURCE, include_stdlib=False).project


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert {"vhdl", "verilog", "ir", "tydi-ir", "dot"} <= set(names)
        assert names == sorted(names)

    def test_get_backend_instantiates_with_default_options(self):
        backend = get_backend("dot")
        assert isinstance(backend, DotBackend)
        assert backend.options == DotBackendOptions()

    def test_unknown_backend_names_available(self):
        with pytest.raises(TydiBackendError, match="unknown backend 'systemc'"):
            get_backend("systemc")
        with pytest.raises(TydiBackendError, match="vhdl"):
            get_backend("systemc")

    def test_register_and_unregister_custom_backend(self, project):
        class NullBackend(Backend):
            name = "null"
            description = "emits nothing per implementation"

            def emit_unit(self, project, implementation):
                return {f"{implementation.name}.null": f"-- {implementation.name}\n"}

        register_backend(NullBackend)
        try:
            assert "null" in available_backends()
            files = get_backend("null").emit(project)
            assert set(files) == {"stage_i.null", "top_i.null"}
        finally:
            unregister_backend("null")
        assert "null" not in available_backends()

    def test_conflicting_registration_rejected(self):
        class FakeVhdl(Backend):
            name = "vhdl"

            def emit_unit(self, project, implementation):  # pragma: no cover
                return {}

        with pytest.raises(TydiBackendError, match="already registered"):
            register_backend(FakeVhdl)

    def test_reregistering_same_class_is_noop(self):
        cls = backend_class("vhdl")
        assert register_backend(cls) is cls

    def test_wrong_options_type_rejected(self):
        with pytest.raises(TydiBackendError, match="expects DotBackendOptions"):
            get_backend("dot", BackendOptions())


class TestProtocol:
    def test_emit_is_assemble_of_units(self, project):
        """The composition law the per-implementation cache relies on."""
        backend = get_backend("vhdl")
        units = {
            name: backend.emit_unit(project, impl)
            for name, impl in project.implementations.items()
        }
        assembled = backend.assemble(project, backend.emit_shared(project), units)
        assert list(assembled.items()) == list(backend.emit(project).items())

    def test_default_assemble_sorted_and_collision_checked(self, project):
        class CollidingBackend(Backend):
            name = "colliding"

            def emit_unit(self, project, implementation):
                return {"same.txt": implementation.name}

        with pytest.raises(TydiBackendError, match="duplicate file"):
            CollidingBackend().emit(project)

    def test_options_token_is_order_independent_and_typed(self):
        token = DotBackendOptions(highlight=("a",), rankdir="TB").token()
        assert token.startswith("DotBackendOptions(")
        assert "highlight=('a',)" in token and "rankdir='TB'" in token
        assert DotBackendOptions().token() != BackendOptions().token()


class TestImplementationFingerprint:
    def test_stable_across_recompiles(self):
        p1 = compile_project(SOURCE, include_stdlib=False).project
        p2 = compile_project(SOURCE, include_stdlib=False).project
        for name in p1.implementations:
            assert implementation_fingerprint(
                p1, p1.implementations[name]
            ) == implementation_fingerprint(p2, p2.implementations[name])

    def test_sensitive_to_type_change(self):
        p1 = compile_project(SOURCE, include_stdlib=False).project
        p2 = compile_project(SOURCE.replace("Bit(8)", "Bit(16)"), include_stdlib=False).project
        for name in p1.implementations:
            assert implementation_fingerprint(
                p1, p1.implementations[name]
            ) != implementation_fingerprint(p2, p2.implementations[name])

    def test_unrelated_implementations_unaffected_by_edit(self):
        sources = build_chain_design(4)
        p1 = compile_sources(sources, include_stdlib=False).project
        edited = list(sources)
        text, name = edited[0]
        edited[0] = (text.replace("Bit(8)", "Bit(9)"), name)
        p2 = compile_sources(edited, include_stdlib=False).project
        changed = [
            impl_name
            for impl_name in p1.implementations
            if impl_name in p2.implementations
            and implementation_fingerprint(p1, p1.implementations[impl_name])
            != implementation_fingerprint(p2, p2.implementations[impl_name])
        ]
        unchanged = [
            impl_name
            for impl_name in p1.implementations
            if impl_name in p2.implementations and impl_name not in changed
        ]
        # The edited step (and its consumers) change; the tail of the chain
        # and unrelated steps keep their fingerprints.
        assert changed, "the edited implementation must change fingerprint"
        assert unchanged, "untouched implementations must keep their fingerprint"


class TestDotBackend:
    def test_clusters_instances_and_edges(self, project):
        text = get_backend("dot").emit(project)["design.dot"]
        assert text.startswith('digraph "design" {')
        assert '"cluster_top_i"' in text
        assert '"top_i.a" [label="a\\nstage_s", shape=box]' in text
        assert '"top_i.port.i"' in text
        assert '"top_i.a" -> "top_i.b"' in text
        assert 'label="Stream(Bit(8), d=1)"' in text
        assert text.endswith("}\n")

    def test_external_implementation_rendered_as_component(self, project):
        text = get_backend("dot").emit(project)["design.dot"]
        assert '"cluster_stage_i"' in text
        assert "external blackbox" in text

    def test_highlight_option_fills_nodes(self, project):
        options = DotBackendOptions(highlight=("a",))
        text = get_backend("dot", options).emit(project)["design.dot"]
        assert 'style=filled' in text and 'fillcolor="#f4a6a6"' in text
        plain = get_backend("dot").emit(project)["design.dot"]
        assert "style=filled" not in plain

    def test_synthesized_connections_dashed(self):
        source = """
        type t = Stream(Bit(8), d=1);
        streamlet src_s { a: t out, }
        external impl src_i of src_s;
        streamlet snk_s { x: t in, }
        external impl snk_i of snk_s;
        streamlet top_s { }
        impl top_i of top_s {
            instance s(src_i), instance k1(snk_i), instance k2(snk_i),
            s.a => k1.x, s.a => k2.x,
        }
        top top_i;
        """
        result = compile_project(source, include_stdlib=False)
        text = get_backend("dot").emit(result.project)[f"{result.project.name}.dot"]
        assert "style=dashed" in text

    def test_show_types_can_be_disabled(self, project):
        options = DotBackendOptions(show_types=False)
        text = get_backend("dot", options).emit(project)["design.dot"]
        assert "Stream(Bit(8)" not in text


class TestSimConsumers:
    def test_bottleneck_report_to_dot_highlights_components(self, compiled_queries, tpch_tables):
        query_result = compiled_queries["q6"]
        from repro.queries import QUERIES
        from repro.sim.bottleneck import analyze_bottlenecks

        _, trace, _ = QUERIES["q6"].simulate(tpch_tables)
        report = analyze_bottlenecks(trace)
        dot = report.to_dot(query_result.project)
        assert dot.startswith("digraph")
        if report.bottleneck_component() is not None:
            assert "style=filled" in dot

    def test_deadlock_report_to_dot_renders(self, project):
        from repro.sim.deadlock import DeadlockReport, StalledChannel

        report = DeadlockReport(
            stalled=[
                StalledChannel(
                    channel="c0", source="a.output", sink="b.input",
                    queued_packets=1, pending_packets=0,
                )
            ],
            waiting_components=["b"],
        )
        dot = report.to_dot(project)
        assert "digraph" in dot
        assert "style=filled" in dot

    def test_deadlock_report_to_dot_renders_full_wait_for_graph(self, project):
        from repro.sim.deadlock import DeadlockReport, StalledChannel

        report = DeadlockReport(
            stalled=[
                StalledChannel(
                    channel="c0", source="a.output", sink="b.input",
                    queued_packets=1, pending_packets=0,
                )
            ],
            waiting_components=["a", "b", "c"],
            wait_cycles=[["a", "b", "a"]],
            wait_edges=[("a", "b"), ("b", "a"), ("c", "a")],
        )
        dot = report.to_dot(project)
        # One document: the netlist plus a dashed wait-for cluster.
        assert dot.count("digraph") == 1
        assert '"cluster_wait_for"' in dot
        # Every node of the relation is rendered, not just cycle members.
        for node in ("a", "b", "c"):
            assert f'"waitfor.{node}"' in dot
        # Every edge is rendered; cycle edges are painted, off-cycle ones not.
        assert '"waitfor.a" -> "waitfor.b" [color=' in dot
        assert '"waitfor.b" -> "waitfor.a" [color=' in dot
        assert '"waitfor.c" -> "waitfor.a";' in dot
        # The spliced document still closes properly.
        assert dot.rstrip().endswith("}")

    def test_deadlock_report_to_dot_without_waits_matches_highlight_only(self, project):
        from repro.sim.deadlock import DeadlockReport

        report = DeadlockReport()
        dot = report.to_dot(project)
        assert "cluster_wait_for" not in dot
        assert dot.count("digraph") == 1

    def test_detect_deadlock_records_wait_edges(self):
        from repro.lang.compile import compile_project
        from repro.sim.deadlock import detect_deadlock
        from repro.sim.engine import Simulator

        # An adder driven on only one operand: it waits on the source of
        # its empty input ("top"), and that edge must appear in the report.
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet top_s { a: num in, b: num in, o: num out, }
        impl top_i of top_s {
            instance add(adder_i<type num, type num>),
            a => add.lhs,
            b => add.rhs,
            add.output => o,
        }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project)
        simulator.drive("a", [1, 2, 3])
        simulator.run()
        report = detect_deadlock(simulator)
        assert report.deadlocked
        assert ("add", "top") in report.wait_edges
        dot = report.to_dot(project)
        assert '"waitfor.add" -> "waitfor.top"' in dot
