"""Hypothesis property suite: the workspace session differential.

The property: a :class:`repro.workspace.Workspace` design reached through a
*random sequence* of session operations -- ``add_design`` / ``update_file``
/ ``remove_file`` / ``set_options`` / interleaved queries -- ending at
state S yields byte-identical artefacts (textual IR, diagnostics, stage
log, backend outputs) to a fresh one-shot ``compile_sources`` of S, and
raises the *same* error (type and message) when S does not compile.  In
other words: session memoisation, fingerprint invalidation and the warm
stage cache are observationally invisible.

The file substrate is the chain-design family of :mod:`repro.testing` (the
same generators behind the staged-vs-monolithic differential harness),
mutated with validity-agnostic edits -- removing a chain file is allowed
precisely so the error path is differentials too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TydiError
from repro.lang.compile import CompileOptions, compile_sources
from repro.testing import build_chain_design, mutate_design
from repro.workspace import Workspace

#: Designs stay small so each example compiles in milliseconds.
DESIGN_NAMES = ("alpha", "beta", "gamma")

#: The stdlib adds ~200 lines of parse work per compile and none of the
#: chain designs use it; leaving it out keeps examples fast while the
#: option still varies per design below.
BASE_OPTIONS = CompileOptions(include_stdlib=False)


def outcome(thunk):
    """Either the comparable artefact tuple or the (type, message) of the error."""
    try:
        result = thunk()
    except TydiError as exc:
        return ("error", type(exc).__name__, str(exc))
    return (
        result.ir_text(),
        [str(diagnostic) for diagnostic in result.diagnostics],
        [str(stage) for stage in result.stages],
        result.outputs,
    )


@st.composite
def session_scripts(draw):
    """A seed plus an op script over a bounded design-name pool."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["add", "update", "remove_file", "remove_design", "options", "query"]
                ),
                st.integers(min_value=0, max_value=2**16),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return seed, ops


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(session_scripts())
def test_session_differential(script):
    seed, ops = script
    rng = random.Random(seed)
    workspace = Workspace(options=BASE_OPTIONS)
    #: The model: plain python state the workspace must agree with.
    model: dict[str, dict] = {}

    for op, salt in ops:
        op_rng = random.Random((seed, salt, op).__repr__())
        if op == "add" or not model:
            name = op_rng.choice(DESIGN_NAMES)
            sources = build_chain_design(op_rng.randint(1, 3))
            options = BASE_OPTIONS.replace(
                targets=("ir",) if op_rng.random() < 0.5 else ()
            )
            workspace.add_design(name, sources, options, replace=name in model)
            model[name] = {"files": dict((fn, text) for text, fn in sources), "options": options}
            continue
        name = op_rng.choice(sorted(model))
        state = model[name]
        if op == "update":
            pairs = [(text, fn) for fn, text in state["files"].items()]
            edited, index = mutate_design(op_rng, pairs)
            text, filename = edited[index]
            workspace.update_file(name, filename, text)
            state["files"][filename] = text
        elif op == "remove_file":
            if len(state["files"]) <= 1:
                continue  # keep at least one file per design
            filename = op_rng.choice(sorted(state["files"]))
            workspace.remove_file(name, filename)
            del state["files"][filename]
        elif op == "remove_design":
            workspace.remove_design(name)
            del model[name]
        elif op == "options":
            options = state["options"].replace(
                sugaring=op_rng.random() < 0.8,
                targets=("ir", "dot") if op_rng.random() < 0.3 else state["options"].targets,
            )
            workspace.set_options(name, options)
            state["options"] = options
        elif op == "query":
            # Interleaved queries must not disturb the final differential
            # (they are what seeds the memo and the stage cache).
            outcome(lambda: workspace.result(name))

    assert sorted(workspace.design_names) == sorted(model)
    for name, state in model.items():
        pairs = [(text, fn) for fn, text in state["files"].items()]
        session = outcome(lambda: workspace.result(name))
        fresh = outcome(
            lambda: compile_sources(pairs, options=state["options"], cache=None)
        )
        assert session == fresh, f"design {name!r} diverged from one-shot compile"
        # Query idempotence: asking again changes nothing.
        assert outcome(lambda: workspace.result(name)) == session


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=4),
)
def test_edit_sequences_converge_to_fresh_compile(seed, steps):
    """A linear history of single-file edits on one design: after every
    edit the session query equals the one-shot compile of the same state."""
    rng = random.Random(seed)
    sources = build_chain_design(rng.randint(2, 4))
    workspace = Workspace(options=BASE_OPTIONS)
    workspace.add_design("chain", sources, BASE_OPTIONS)
    current = list(sources)
    for _ in range(steps):
        current, index = mutate_design(rng, current)
        text, filename = current[index]
        workspace.update_file("chain", filename, text)
        session = outcome(lambda: workspace.result("chain"))
        fresh = outcome(lambda: compile_sources(current, options=BASE_OPTIONS, cache=None))
        assert session == fresh


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_lazy_outputs_match_direct_emission(seed):
    """ws.outputs(name, target) for a target outside options.targets equals
    the backend run directly over the one-shot project."""
    from repro.backends import get_backend

    rng = random.Random(seed)
    sources = build_chain_design(rng.randint(1, 3))
    workspace = Workspace(options=BASE_OPTIONS)
    workspace.add_design("chain", sources)
    session_dot = workspace.outputs("chain", "dot")
    fresh = compile_sources(sources, options=BASE_OPTIONS, cache=None)
    assert session_dot == get_backend("dot").emit(fresh.project)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
