"""Unit tests for the primitive behaviours, driven through small compiled designs."""

import pytest

from repro.lang.compile import compile_project
from repro.sim import Simulator


def run_design(source, drives, outputs, channel_capacity=4):
    """Compile, drive the named inputs, and return the requested output values."""
    project = compile_project(source).project
    simulator = Simulator(project, channel_capacity=channel_capacity)
    for port, values in drives.items():
        simulator.drive(port, values)
    trace = simulator.run()
    return {port: trace.output_values(port) for port in outputs}


HEADER = "type num = Stream(Bit(32), d=1);\ntype flag = Stream(Bit(1), d=1);\n"


class TestArithmeticBehaviors:
    def test_adder(self):
        source = HEADER + """
        streamlet top_s { a: num in, b: num in, o: num out, }
        impl top_i of top_s {
            instance add(adder_i<type num, type num>),
            a => add.lhs, b => add.rhs, add.output => o,
        }
        top top_i;
        """
        out = run_design(source, {"a": [1, 2, 3], "b": [10, 20, 30]}, ["o"])
        assert out["o"] == [11, 22, 33]

    def test_subtractor_and_multiplier(self):
        source = HEADER + """
        streamlet top_s { a: num in, b: num in, diff: num out, prod: num out, }
        impl top_i of top_s {
            instance sub(subtractor_i<type num, type num>),
            instance mul(multiplier_i<type num, type num>),
            a => sub.lhs, b => sub.rhs, sub.output => diff,
            a => mul.lhs, b => mul.rhs, mul.output => prod,
        }
        top top_i;
        """
        out = run_design(source, {"a": [6, 8], "b": [2, 4]}, ["diff", "prod"])
        assert out["diff"] == [4, 4]
        assert out["prod"] == [12, 32]

    def test_divider_handles_zero(self):
        source = HEADER + """
        streamlet top_s { a: num in, b: num in, q: num out, }
        impl top_i of top_s {
            instance div(divider_i<type num, type num>),
            a => div.lhs, b => div.rhs, div.output => q,
        }
        top top_i;
        """
        out = run_design(source, {"a": [10, 5], "b": [2, 0]}, ["q"])
        assert out["q"] == [5, 0]


class TestComparatorBehaviors:
    def test_pairwise_comparators(self):
        source = HEADER + """
        streamlet top_s { a: num in, b: num in, lt: flag out, ge: flag out, eq: flag out, }
        impl top_i of top_s {
            instance c_lt(compare_lt_i<type num>),
            instance c_ge(compare_ge_i<type num>),
            instance c_eq(compare_eq_i<type num>),
            a => c_lt.lhs, b => c_lt.rhs, c_lt.result => lt,
            a => c_ge.lhs, b => c_ge.rhs, c_ge.result => ge,
            a => c_eq.lhs, b => c_eq.rhs, c_eq.result => eq,
        }
        top top_i;
        """
        out = run_design(source, {"a": [1, 5, 3], "b": [3, 3, 3]}, ["lt", "ge", "eq"])
        assert out["lt"] == [True, False, False]
        assert out["ge"] == [False, True, True]
        assert out["eq"] == [False, False, True]

    def test_constant_comparator(self):
        source = """
        type word = Stream(Bit(64), d=1);
        type flag = Stream(Bit(1), d=1);
        streamlet top_s { s: word in, hit: flag out, }
        impl top_i of top_s {
            instance c(compare_const_eq_i<type word, "AIR">),
            s => c.input, c.result => hit,
        }
        top top_i;
        """
        out = run_design(source, {"s": ["AIR", "RAIL", "AIR"]}, ["hit"])
        assert out["hit"] == [True, False, True]


class TestLogicAndFanout:
    def test_and_or_gates(self):
        source = HEADER + """
        streamlet top_s { x: flag in, y: flag in, both: flag out, either: flag out, }
        impl top_i of top_s {
            instance g_and(and_i<2>),
            instance g_or(or_i<2>),
            x => g_and.input[0], y => g_and.input[1], g_and.output => both,
            x => g_or.input[0], y => g_or.input[1], g_or.output => either,
        }
        top top_i;
        """
        out = run_design(
            source, {"x": [True, True, False], "y": [True, False, False]}, ["both", "either"]
        )
        assert out["both"] == [True, False, False]
        assert out["either"] == [True, True, False]

    def test_explicit_duplicator_and_voider(self):
        source = HEADER + """
        streamlet top_s { a: num in, o1: num out, o2: num out, }
        impl top_i of top_s {
            instance dup(duplicator_i<type num, 2>),
            instance void_it(voider_i<type num>),
            a => dup.input,
            dup.output[0] => o1,
            dup.output[1] => void_it.input,
            a => o2,
        }
        top top_i;
        """
        # `a` is used twice (dup + o2): sugaring adds another duplicator on top.
        out = run_design(source, {"a": [4, 5, 6]}, ["o1", "o2"])
        assert out["o1"] == [4, 5, 6]
        assert out["o2"] == [4, 5, 6]

    def test_demux_mux_roundtrip(self):
        source = HEADER + """
        streamlet top_s { a: num in, o: num out, }
        impl top_i of top_s {
            instance d(demux_i<type num, 3>),
            instance m(mux_i<type num, 3>),
            a => d.input,
            d.output[0] => m.input[0],
            d.output[1] => m.input[1],
            d.output[2] => m.input[2],
            m.output => o,
        }
        top top_i;
        """
        out = run_design(source, {"a": list(range(9))}, ["o"])
        assert sorted(out["o"]) == list(range(9))


class TestFilterAndAggregates:
    def test_filter_drops_rows(self):
        source = HEADER + """
        streamlet top_s { a: num in, keep: flag in, o: num out, }
        impl top_i of top_s {
            instance f(filter_i<type num>),
            a => f.input, keep => f.keep, f.output => o,
        }
        top top_i;
        """
        out = run_design(
            source, {"a": [1, 2, 3, 4], "keep": [True, False, True, False]}, ["o"]
        )
        assert out["o"] == [1, 3]

    def test_sum_count_avg_min_max(self):
        source = HEADER + """
        streamlet top_s { a: num in, s: num out, c: num out, m: num out, lo: num out, hi: num out, }
        impl top_i of top_s {
            instance acc_s(sum_i<type num, type num>),
            instance acc_c(count_i<type num, type num>),
            instance acc_m(avg_i<type num, type num>),
            instance acc_lo(min_acc_i<type num, type num>),
            instance acc_hi(max_acc_i<type num, type num>),
            a => acc_s.input, acc_s.output => s,
            a => acc_c.input, acc_c.output => c,
            a => acc_m.input, acc_m.output => m,
            a => acc_lo.input, acc_lo.output => lo,
            a => acc_hi.input, acc_hi.output => hi,
        }
        top top_i;
        """
        out = run_design(source, {"a": [4, 8, 6, 2]}, ["s", "c", "m", "lo", "hi"])
        assert out["s"] == [20]
        assert out["c"] == [4]
        assert out["m"] == [5]
        assert out["lo"] == [2]
        assert out["hi"] == [8]

    def test_group_sum_and_count(self):
        source = """
        type key_t = Stream(Bit(64), d=1);
        type num = Stream(Bit(64), d=1);
        type res_t = Stream(Bit(128), d=1);
        streamlet top_s { k: key_t in, v: num in, sums: res_t out, counts: res_t out, }
        impl top_i of top_s {
            instance gs(group_sum_i<type key_t, type num, type res_t>),
            instance gc(group_count_i<type key_t, type num, type res_t>),
            k => gs.key, v => gs.value, gs.output => sums,
            k => gc.key, v => gc.value, gc.output => counts,
        }
        top top_i;
        """
        out = run_design(
            source,
            {"k": ["a", "b", "a", "b", "a"], "v": [1, 10, 2, 20, 3]},
            ["sums", "counts"],
        )
        assert dict(out["sums"]) == {"a": 6, "b": 30}
        assert dict(out["counts"]) == {"a": 3, "b": 2}

    def test_combine2_builds_tuples(self):
        source = """
        type word = Stream(Bit(64), d=1);
        type pair_t = Stream(Bit(128), d=1);
        streamlet top_s { a: word in, b: word in, o: pair_t out, }
        impl top_i of top_s {
            instance c(combine2_i<type word, type word, type pair_t>),
            a => c.in0, b => c.in1, c.output => o,
        }
        top top_i;
        """
        out = run_design(source, {"a": ["x", "y"], "b": [1, 2]}, ["o"])
        assert out["o"] == [("x", 1), ("y", 2)]

    def test_const_generator_pairs_with_stream(self):
        source = HEADER + """
        streamlet top_s { a: num in, o: num out, }
        impl top_i of top_s {
            instance five(const_int_generator_i<type num, 5>),
            instance mul(multiplier_i<type num, type num>),
            a => mul.lhs, five.output => mul.rhs, mul.output => o,
        }
        top top_i;
        """
        out = run_design(source, {"a": [1, 2, 3]}, ["o"])
        assert out["o"] == [5, 10, 15]

    def test_empty_input_still_terminates_aggregate(self):
        source = HEADER + """
        streamlet top_s { a: num in, s: num out, }
        impl top_i of top_s {
            instance acc(sum_i<type num, type num>),
            a => acc.input, acc.output => s,
        }
        top top_i;
        """
        out = run_design(source, {"a": []}, ["s"])
        assert out["s"] == [0]
