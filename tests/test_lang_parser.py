"""Unit tests for the Tydi-lang parser."""

import pytest

from repro.errors import TydiSyntaxError
from repro.lang import ast
from repro.lang.parser import parse_source


class TestTopLevelDeclarations:
    def test_package_and_use(self):
        unit = parse_source("package mylib;\nuse std;\nconst x = 1;")
        assert unit.package == "mylib"
        assert unit.uses == ["std"]

    def test_const_declaration(self):
        unit = parse_source("const width = 8 * 4;")
        decl = unit.declarations[0]
        assert isinstance(decl, ast.ConstDecl)
        assert decl.name == "width"
        assert isinstance(decl.value, ast.BinaryOp)

    def test_type_alias(self):
        unit = parse_source("type bool_t = Stream(Bit(1), d=1);")
        decl = unit.declarations[0]
        assert isinstance(decl, ast.TypeAliasDecl)
        assert isinstance(decl.type_expr, ast.StreamTypeExpr)

    def test_group_declaration(self):
        unit = parse_source("Group AdderInput { data0: Bit(32), data1: Bit(32), }")
        decl = unit.declarations[0]
        assert isinstance(decl, ast.GroupDecl)
        assert [name for name, _ in decl.fields] == ["data0", "data1"]

    def test_union_declaration(self):
        unit = parse_source("Union Value { int_v: Bit(32), char_v: Bit(8), }")
        decl = unit.declarations[0]
        assert isinstance(decl, ast.UnionDecl)
        assert len(decl.variants) == 2

    def test_top_declaration(self):
        unit = parse_source("top main_i;")
        assert isinstance(unit.declarations[0], ast.TopDecl)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TydiSyntaxError):
            parse_source("module x {}")


class TestStreamlets:
    def test_simple_streamlet(self):
        unit = parse_source(
            "streamlet pass_s { input: Stream(Bit(8)) in, output: Stream(Bit(8)) out, }"
        )
        decl = unit.declarations[0]
        assert isinstance(decl, ast.StreamletDecl)
        assert not decl.is_template()
        assert decl.ports[0].direction == "in"
        assert decl.ports[1].direction == "out"

    def test_template_streamlet(self):
        source = "streamlet dup_s<data_type: type, channel: int> { input: data_type in, output: data_type out [channel], }"
        decl = parse_source(source).declarations[0]
        assert decl.is_template()
        assert [p.kind for p in decl.params] == ["type", "int"]
        assert decl.ports[1].array_size is not None

    def test_port_clock_domain(self):
        decl = parse_source("streamlet s { d: Stream(Bit(1)) in @ fast_clock, }").declarations[0]
        assert decl.ports[0].clock_domain == "fast_clock"

    def test_impl_of_streamlet_param(self):
        source = "streamlet par_s<pu: impl of process_unit_s> { x: Bit(1) in, }"
        decl = parse_source(source).declarations[0]
        assert decl.params[0].kind == "impl"
        assert decl.params[0].of_streamlet == "process_unit_s"

    def test_bad_port_direction(self):
        with pytest.raises(TydiSyntaxError):
            parse_source("streamlet s { d: Bit(1) sideways, }")


class TestImplementations:
    def test_external_impl(self):
        decl = parse_source("external impl adder of adder_s;").declarations[0]
        assert isinstance(decl, ast.ImplDecl)
        assert decl.external
        assert decl.body == ()

    def test_impl_with_instances_and_connections(self):
        source = """
        impl top_i of top_s {
            instance a(adder_i<type Bit(8)>),
            instance pool(worker_i) [4],
            input => a.lhs,
            a.output => output,
        }
        """
        decl = parse_source(source).declarations[0]
        instances = [i for i in decl.body if isinstance(i, ast.InstanceDecl)]
        connections = [c for c in decl.body if isinstance(c, ast.ConnectionStmt)]
        assert len(instances) == 2
        assert instances[1].array_size is not None
        assert len(connections) == 2

    def test_template_impl_args(self):
        source = "impl void_i<t: type> of void_s<type t> { }"
        decl = parse_source(source).declarations[0]
        assert decl.is_template()
        assert isinstance(decl.streamlet_args[0], ast.TypeArg)

    def test_impl_arg_passing(self):
        source = "impl p_i of p_s<impl adder_32, 8> {}"
        decl = parse_source(source).declarations[0]
        assert isinstance(decl.streamlet_args[0], ast.ImplArg)
        assert isinstance(decl.streamlet_args[1], ast.ExprArg)

    def test_for_statement(self):
        source = """
        impl x_i of x_s {
            for i in 0->count {
                pu[i].output => mux.input[i],
            }
        }
        """
        decl = parse_source(source).declarations[0]
        loop = decl.body[0]
        assert isinstance(loop, ast.ForStmt)
        assert loop.variable == "i"
        assert isinstance(loop.iterable, ast.RangeExpr)
        assert isinstance(loop.body[0], ast.ConnectionStmt)

    def test_if_else_statement(self):
        source = """
        impl x_i of x_s {
            if (use_fast) {
                instance f(fast_i),
            } else {
                instance s(slow_i),
            }
        }
        """
        decl = parse_source(source).declarations[0]
        branch = decl.body[0]
        assert isinstance(branch, ast.IfStmt)
        assert len(branch.then_body) == 1
        assert len(branch.else_body) == 1

    def test_assert_statement(self):
        decl = parse_source('impl x of y { assert(width > 0, "bad width"), }').declarations[0]
        statement = decl.body[0]
        assert isinstance(statement, ast.AssertStmt)
        assert statement.message is not None

    def test_local_const(self):
        decl = parse_source("impl x of y { const n = 3, }").declarations[0]
        assert isinstance(decl.body[0], ast.LocalConstDecl)

    def test_connection_attributes(self):
        decl = parse_source("impl x of y { a => b @structural, }").declarations[0]
        assert decl.body[0].attributes == ("structural",)

    def test_indexed_port_refs(self):
        decl = parse_source("impl x of y { demux.output[i] => pu[i].input, }").declarations[0]
        connection = decl.body[0]
        assert connection.source.owner == "demux"
        assert connection.source.port_index is not None
        assert connection.sink.owner_index is not None

    def test_simulation_block(self):
        source = """
        external impl counter of counter_s {
            simulation {
                state count = 0;
                on receive(input) {
                    state count = count + 1;
                    send(output, count);
                    ack(input);
                }
            }
        }
        """
        decl = parse_source(source).declarations[0]
        assert decl.simulation is not None
        assert decl.simulation.states[0].name == "count"
        assert len(decl.simulation.handlers) == 1

    def test_two_simulation_blocks_rejected(self):
        source = "impl x of y { simulation { } simulation { } }"
        with pytest.raises(TydiSyntaxError):
            parse_source(source)


class TestExpressions:
    def parse_const(self, expression):
        return parse_source(f"const v = {expression};").declarations[0].value

    def test_precedence_multiplication_over_addition(self):
        expr = self.parse_const("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_power_is_right_associative(self):
        expr = self.parse_const("2 ^ 3 ^ 4")
        assert expr.op == "^"
        assert expr.right.op == "^"

    def test_paper_bit_width_expression(self):
        # The paper's decimal example: ceil(log2(10^15 - 1)).
        expr = self.parse_const("ceil(log2(10 ^ 15 - 1))")
        assert isinstance(expr, ast.Call)
        assert expr.function == "ceil"

    def test_array_literal_and_index(self):
        expr = self.parse_const('["a", "b"][1]')
        assert isinstance(expr, ast.IndexExpr)
        assert isinstance(expr.base, ast.ArrayLiteral)

    def test_boolean_expression(self):
        expr = self.parse_const("a && !b || c > 3")
        assert expr.op == "||"

    def test_unary_minus(self):
        expr = self.parse_const("-5 + 3")
        assert isinstance(expr.left, ast.UnaryOp)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(TydiSyntaxError):
            parse_source("const x = 3")


class TestSpans:
    def test_declarations_carry_spans(self):
        unit = parse_source("const x = 1;\nconst y = 2;", filename="spans.td")
        assert unit.declarations[0].span.filename == "spans.td"
        assert unit.declarations[1].span.start.line == 2
