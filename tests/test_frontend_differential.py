"""Differential safety net for the optimized frontend.

The lexer was rewritten around first-character dispatch tables
(``repro.lang.lexer``) and the AST/token dataclasses gained ``slots=True``
and interned identifier strings.  None of that may change *behaviour*:
this suite pins the optimized frontend against a byte-for-byte copy of the
pre-optimization lexer (kept below as :func:`_reference_tokenize`) and
asserts

* identical token streams (kind, text, span and value) over the stdlib,
  the TPC-H query sources, a fuzzed design corpus and a bank of tricky
  literals -- including the non-ASCII edge cases the dispatch rewrite
  special-cases;
* identical ``TydiSyntaxError`` messages and spans on invalid input;
* an identical end-to-end pipeline: compiling through the *reference*
  lexer (monkeypatched into the parser) produces the same IR text, stage
  logs and diagnostics as the optimized one.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TydiSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.queries import ALL_QUERIES
from repro.stdlib.source import STDLIB_SOURCE
from repro.testing import build_random_design
from repro.utils.source import SourceFile

# ---------------------------------------------------------------------------
# The pre-optimization lexer, verbatim (longest-first linear operator scan).
# This is the behavioural reference the dispatch-table lexer must match.
# ---------------------------------------------------------------------------

_REFERENCE_OPERATORS: list[tuple[str, TokenKind]] = [
    ("=>", TokenKind.ARROW),
    ("->", TokenKind.RANGE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    ("<", TokenKind.LANGLE),
    (">", TokenKind.RANGLE),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMICOLON),
    (":", TokenKind.COLON),
    (".", TokenKind.DOT),
    ("@", TokenKind.AT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("^", TokenKind.CARET),
    ("!", TokenKind.NOT),
]


def _reference_tokenize(text: str, filename: str = "<string>") -> list[Token]:
    source = SourceFile(text, filename)
    tokens: list[Token] = []
    i = 0
    n = len(text)

    while i < n:
        ch = text[i]

        if ch in " \t\r\n":
            i += 1
            continue

        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue

        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise TydiSyntaxError("unterminated block comment", source.span(i, n))
            i = end + 2
            continue

        if ch in "\"'":
            quote = ch
            j = i + 1
            chars: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chars.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise TydiSyntaxError("unterminated string literal", source.span(i, n))
            tokens.append(
                Token(TokenKind.STRING, text[i : j + 1], source.span(i, j + 1), "".join(chars))
            )
            i = j + 1
            continue

        if ch.isdigit():
            j = i
            is_float = False
            while j < n and (text[j].isdigit() or text[j] == "_"):
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and (text[j].isdigit() or text[j] == "_"):
                    j += 1
            if j < n and text[j] in "eE" and (
                (j + 1 < n and text[j + 1].isdigit())
                or (j + 2 < n and text[j + 1] in "+-" and text[j + 2].isdigit())
            ):
                is_float = True
                j += 1
                if text[j] in "+-":
                    j += 1
                while j < n and text[j].isdigit():
                    j += 1
            literal = text[i:j].replace("_", "")
            if is_float:
                tokens.append(Token(TokenKind.FLOAT, text[i:j], source.span(i, j), float(literal)))
            else:
                tokens.append(Token(TokenKind.INT, text[i:j], source.span(i, j), int(literal)))
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tokens.append(Token(TokenKind.IDENT, word, source.span(i, j), word))
            i = j
            continue

        matched = False
        for literal, kind in _REFERENCE_OPERATORS:
            if text.startswith(literal, i):
                tokens.append(Token(kind, literal, source.span(i, i + len(literal))))
                i += len(literal)
                matched = True
                break
        if matched:
            continue

        raise TydiSyntaxError(f"unexpected character {ch!r}", source.span(i, i + 1))

    tokens.append(Token(TokenKind.EOF, "", source.span(n, n)))
    return tokens


# ---------------------------------------------------------------------------
# Corpora
# ---------------------------------------------------------------------------


def _fuzzed_designs(count: int = 12) -> list[tuple[str, str]]:
    rng = random.Random(20260808)
    sources: list[tuple[str, str]] = []
    for _ in range(count):
        sources.extend(build_random_design(rng))
    return sources


TRICKY_SOURCES = [
    "x = 1_000_000; y = 3.14; z = 1e9; w = 2.5e-3; v = 10E+2;",
    "a=1..5; b = 0.5.c; d = 9_;",  # dots vs float boundaries
    's = "hi\\n\\t\\\\\\"there"; t = \'it\\\'s\';',
    "a=>b; a->b; a==b; a!=b; a<=b; a>=b; a&&b; a||b; a<b>c;",
    "impl/*inline*/x of// trailing\ny {}",
    "/* multi\nline\ncomment */ streamlet s { }",
    "αβγ = 42; café_au_lait = δ;",  # non-ASCII identifiers
    "x = ١٢٣; munge = ٣.٠;",  # non-ASCII (Arabic-Indic) digits
    "_underscore __dunder x_1_y",
    "",  # empty source: EOF only
    "   \t\r\n  ",  # whitespace only
]

INVALID_SOURCES = [
    "x = ?",
    "a # b",
    '"unterminated',
    "'also unterminated",
    "/* never closed",
    "x = \x00",
]


def _corpus() -> list[tuple[str, str]]:
    sources: list[tuple[str, str]] = [(STDLIB_SOURCE, "std.td")]
    for query in ALL_QUERIES:
        sources.extend(query.sources())
    sources.extend(_fuzzed_designs())
    sources.extend((text, f"tricky{i}.td") for i, text in enumerate(TRICKY_SOURCES))
    return sources


# ---------------------------------------------------------------------------
# Token-stream equivalence
# ---------------------------------------------------------------------------


class TestTokenStreams:
    def test_corpus_token_streams_identical(self):
        corpus = _corpus()
        assert len(corpus) > 40  # stdlib + 5 queries + fuzz + tricky bank
        for text, filename in corpus:
            assert tokenize(text, filename) == _reference_tokenize(text, filename), filename

    def test_invalid_sources_raise_identically(self):
        for text in INVALID_SOURCES:
            with pytest.raises(TydiSyntaxError) as optimized:
                tokenize(text, "bad.td")
            with pytest.raises(TydiSyntaxError) as reference:
                _reference_tokenize(text, "bad.td")
            assert str(optimized.value) == str(reference.value)
            assert optimized.value.span == reference.value.span

    def test_operator_tables_cover_reference(self):
        from repro.lang import lexer

        assert dict(lexer._OPERATORS) == dict(_REFERENCE_OPERATORS)


# ---------------------------------------------------------------------------
# End-to-end pipeline equivalence (reference lexer monkeypatched in)
# ---------------------------------------------------------------------------


def _render_result(result) -> tuple:
    """Everything observable about a compile, in comparable form."""
    return (
        result.ir_text(),
        [(s.name, s.detail) for s in result.stages],
        [str(d) for d in result.diagnostics],
        {target: files for target, files in sorted(result.outputs.items())},
    )


class TestPipelineDifferential:
    def _compile_both(self, monkeypatch, sources, options):
        from repro.lang import compile as compile_mod
        from repro.lang import parser
        from repro.lang.compile import run_pipeline

        compile_mod._parsed_stdlib.cache_clear()
        optimized = run_pipeline(sources, options)
        monkeypatch.setattr(parser, "tokenize", _reference_tokenize)
        compile_mod._parsed_stdlib.cache_clear()
        reference = run_pipeline(sources, options)
        monkeypatch.undo()
        compile_mod._parsed_stdlib.cache_clear()
        return optimized, reference

    def test_fuzzed_designs_compile_identically(self, monkeypatch):
        from repro.lang.compile import CompileOptions

        rng = random.Random(97)
        for _ in range(4):
            sources = build_random_design(rng)
            optimized, reference = self._compile_both(
                monkeypatch, sources, CompileOptions(targets=("vhdl",))
            )
            assert _render_result(optimized) == _render_result(reference)

    def test_tpch_query_compiles_identically(self, monkeypatch):
        from repro.lang.compile import CompileOptions

        query = ALL_QUERIES[0]
        optimized, reference = self._compile_both(
            monkeypatch, query.sources(), CompileOptions(top=query.top)
        )
        assert _render_result(optimized) == _render_result(reference)
