"""Unit tests for source locations and spans."""

import pytest

from repro.utils.source import SourceFile, SourceLocation, SourceSpan, unknown_span


class TestSourceLocation:
    def test_ordering(self):
        assert SourceLocation(1, 5) < SourceLocation(2, 1)
        assert SourceLocation(3, 2) < SourceLocation(3, 10)

    def test_str(self):
        assert str(SourceLocation(4, 7)) == "4:7"


class TestSourceFile:
    def test_offset_to_location_first_line(self):
        source = SourceFile("hello\nworld\n", "demo.td")
        assert source.location(0) == SourceLocation(1, 1)
        assert source.location(4) == SourceLocation(1, 5)

    def test_offset_to_location_second_line(self):
        source = SourceFile("hello\nworld\n", "demo.td")
        assert source.location(6) == SourceLocation(2, 1)
        assert source.location(10) == SourceLocation(2, 5)

    def test_offset_clamping(self):
        source = SourceFile("ab", "demo.td")
        assert source.location(-5) == SourceLocation(1, 1)
        assert source.location(100) == SourceLocation(1, 3)

    def test_span_filename(self):
        source = SourceFile("streamlet x {}", "design.td")
        span = source.span(0, 9)
        assert span.filename == "design.td"
        assert span.start == SourceLocation(1, 1)
        assert span.end == SourceLocation(1, 10)

    def test_line_text(self):
        source = SourceFile("first\nsecond\nthird", "f")
        assert source.line_text(2) == "second"
        assert source.line_text(99) == ""

    def test_num_lines(self):
        assert SourceFile("", "f").num_lines() == 0
        assert SourceFile("a\nb\nc", "f").num_lines() == 3

    def test_snippet_contains_caret(self):
        source = SourceFile("const x = 1;\nconst y = oops;", "f")
        span = source.span(source.text.index("oops"), source.text.index("oops") + 4)
        snippet = source.snippet(span)
        assert "const y = oops;" in snippet
        assert "^" in snippet


class TestSourceSpan:
    def test_merge_takes_extremes(self):
        a = SourceSpan("f", SourceLocation(1, 1), SourceLocation(1, 5))
        b = SourceSpan("f", SourceLocation(2, 3), SourceLocation(2, 9))
        merged = a.merge(b)
        assert merged.start == SourceLocation(1, 1)
        assert merged.end == SourceLocation(2, 9)

    def test_str_points_at_start(self):
        span = SourceSpan("x.td", SourceLocation(3, 4), SourceLocation(3, 9))
        assert str(span) == "x.td:3:4"

    def test_unknown_span(self):
        span = unknown_span()
        assert span.start.line == 0
