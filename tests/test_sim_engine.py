"""Unit tests for the event-driven simulation engine."""

import pytest

from repro.errors import TydiSimulationError
from repro.lang.compile import compile_project
from repro.sim import Simulator, analyze_bottlenecks, detect_deadlock
from repro.sim.packets import Packet


ADD_TEN_PIPELINE = """
type num = Stream(Bit(32), d=1);
streamlet top_s { values: num in, total: num out, }
impl top_i of top_s {
    instance ten(const_int_generator_i<type num, 10>),
    instance add(adder_i<type num, type num>),
    instance acc(sum_i<type num, type num>),
    values => add.lhs,
    ten.output => add.rhs,
    add.output => acc.input,
    acc.output => total,
}
top top_i;
"""


@pytest.fixture(scope="module")
def pipeline_project():
    return compile_project(ADD_TEN_PIPELINE).project


class TestElaboration:
    def test_leaf_components_discovered(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        assert set(simulator.components) == {"ten", "add", "acc"}

    def test_channels_connect_endpoints(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        sinks = {channel.sink for channel in simulator.channels}
        assert ("add", "lhs") in sinks
        assert ("", "total") in {channel.sink for channel in simulator.channels}

    def test_hierarchical_flattening(self):
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet unit_s { input: num in, output: num out, }
        external impl unit_i of unit_s;
        streamlet wrap_s { input: num in, output: num out, }
        impl wrap_i of wrap_s {
            instance inner(unit_i),
            input => inner.input,
            inner.output => output,
        }
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s {
            instance w(wrap_i),
            i => w.input,
            w.output => o,
        }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project, behaviors={"unit_i": _passthrough_factory})
        assert list(simulator.components) == ["w/inner"]
        simulator.drive("i", [1, 2, 3])
        trace = simulator.run()
        assert trace.output_values("o") == [1, 2, 3]

    def test_external_top_rejected(self, pipeline_project):
        with pytest.raises(TydiSimulationError):
            Simulator(pipeline_project, top=next(
                name for name, impl in pipeline_project.implementations.items() if impl.external
            ))

    def test_missing_top_rejected(self):
        project = compile_project(ADD_TEN_PIPELINE).project
        project.top = None
        with pytest.raises(TydiSimulationError):
            Simulator(project)


class _Passthrough:
    latency = 1

    def fire(self, ctx):
        if not ctx.has_input("input") or not ctx.can_send("output"):
            return False
        ctx.send("output", ctx.take("input"), delay=self.latency)
        return True


def _passthrough_factory(implementation):
    return _Passthrough()


class TestExecution:
    def test_functional_result(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive("values", [1, 2, 3, 4, 5])
        trace = simulator.run()
        assert trace.output_values("total") == [sum(v + 10 for v in [1, 2, 3, 4, 5])]

    def test_trace_records_inputs_and_outputs(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive("values", [7])
        trace = simulator.run()
        assert "values" in trace.inputs
        assert "total" in trace.outputs
        assert trace.events_processed > 0

    def test_drive_unknown_port_rejected(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        with pytest.raises(TydiSimulationError):
            simulator.drive("nonexistent", [1])

    def test_drive_packets_with_custom_last(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive_packets("values", [Packet(5, last=(True,))])
        trace = simulator.run()
        assert trace.output_values("total") == [15]

    def test_channel_stats_accumulate(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive("values", list(range(10)))
        trace = simulator.run()
        add_input = next(c for c in trace.channels.values() if c.sink == ("add", "lhs"))
        assert add_input.stats.packets_transferred == 10

    def test_behavior_override_by_instance_path(self):
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet unit_s { input: num in, output: num out, }
        external impl mystery_i of unit_s;
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance m(mystery_i), i => m.input, m.output => o, }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project, behaviors={"m": _Passthrough()})
        simulator.drive("i", [9, 8])
        assert simulator.run().output_values("o") == [9, 8]

    def test_missing_behavior_rejected(self):
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet unit_s { input: num in, output: num out, }
        external impl mystery_i of unit_s;
        streamlet top_s { i: num in, o: num out, }
        impl top_i of top_s { instance m(mystery_i), i => m.input, m.output => o, }
        top top_i;
        """
        project = compile_project(source).project
        with pytest.raises(TydiSimulationError):
            Simulator(project)

    def test_scheduling_in_the_past_rejected(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        with pytest.raises(TydiSimulationError):
            simulator.schedule(-1, lambda: None)


class TestBackpressure:
    def test_small_capacity_still_correct(self, pipeline_project):
        simulator = Simulator(pipeline_project, channel_capacity=1)
        simulator.drive("values", list(range(20)))
        trace = simulator.run()
        assert trace.output_values("total") == [sum(v + 10 for v in range(20))]

    def test_larger_capacity_same_result(self, pipeline_project):
        simulator = Simulator(pipeline_project, channel_capacity=16)
        simulator.drive("values", list(range(20)))
        assert simulator.run().output_values("total") == [sum(v + 10 for v in range(20))]


class TestAnalyses:
    def test_no_deadlock_in_healthy_pipeline(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive("values", [1, 2, 3])
        simulator.run()
        assert not detect_deadlock(simulator).deadlocked

    def test_deadlock_detected_for_missing_operand(self, pipeline_project):
        # Drive only one operand of the two-input adder: it waits forever.
        source = """
        type num = Stream(Bit(8), d=1);
        streamlet top_s { a: num in, b: num in, o: num out, }
        impl top_i of top_s {
            instance add(adder_i<type num, type num>),
            a => add.lhs,
            b => add.rhs,
            add.output => o,
        }
        top top_i;
        """
        project = compile_project(source).project
        simulator = Simulator(project)
        simulator.drive("a", [1, 2, 3])
        simulator.run()
        report = detect_deadlock(simulator)
        assert report.deadlocked
        assert "add" in report.waiting_components

    def test_bottleneck_report_ranks_channels(self, pipeline_project):
        simulator = Simulator(pipeline_project)
        simulator.drive("values", list(range(30)))
        trace = simulator.run()
        report = analyze_bottlenecks(trace)
        assert len(report.entries) == len(trace.channels)
        assert report.worst(3)
        assert "bottleneck analysis" in report.summary()
