"""Unit tests for the SQL subset parser."""

import pytest

from repro.errors import TydiSyntaxError
from repro.sql.ast import Aggregate, BetweenExpr, BinaryExpr, ColumnRef, InExpr, Literal, NotExpr
from repro.sql.parser import parse_sql


class TestSelectStructure:
    def test_simple_aggregate(self):
        stmt = parse_sql("select sum(x) from t;")
        assert stmt.tables == ["t"]
        assert len(stmt.aggregates()) == 1
        assert stmt.aggregates()[0].function == "sum"

    def test_alias_with_as(self):
        stmt = parse_sql("select sum(x) as total from t;")
        assert stmt.aggregates()[0].alias == "total"

    def test_multiple_items_and_tables(self):
        stmt = parse_sql("select a, sum(b) from t1, t2;")
        assert stmt.tables == ["t1", "t2"]
        assert len(stmt.items) == 2
        assert isinstance(stmt.items[0].expr, ColumnRef)

    def test_count_star(self):
        stmt = parse_sql("select count(*) as n from t;")
        agg = stmt.aggregates()[0]
        assert agg.function == "count"
        assert agg.argument is None

    def test_group_by_and_order_by(self):
        stmt = parse_sql("select sum(x) from t group by a, b order by a desc, b;")
        assert [c.column for c in stmt.group_by] == ["a", "b"]
        assert [c.column for c in stmt.order_by] == ["a", "b"]

    def test_missing_from_rejected(self):
        with pytest.raises(TydiSyntaxError):
            parse_sql("select sum(x);")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TydiSyntaxError):
            parse_sql("select sum(x) from t; banana")


class TestWhereExpressions:
    def where(self, text):
        return parse_sql(f"select sum(x) from t where {text};").where

    def test_comparison(self):
        expr = self.where("a >= 10")
        assert isinstance(expr, BinaryExpr)
        assert expr.op == ">="
        assert isinstance(expr.right, Literal)

    def test_and_or_precedence(self):
        expr = self.where("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_parentheses_override(self):
        expr = self.where("(a = 1 or b = 2) and c = 3")
        assert expr.op == "and"
        assert expr.left.op == "or"

    def test_not(self):
        expr = self.where("not a = 1")
        assert isinstance(expr, NotExpr)

    def test_between(self):
        expr = self.where("d between 0.05 and 0.07")
        assert isinstance(expr, BetweenExpr)
        assert expr.low.value == 0.05
        assert expr.high.value == 0.07

    def test_in_list(self):
        expr = self.where("c in ('A', 'B', 'C')")
        assert isinstance(expr, InExpr)
        assert [o.value for o in expr.options] == ["A", "B", "C"]

    def test_string_literal_with_quote_escape(self):
        expr = self.where("name = 'O''Brien'")
        assert expr.right.value == "O'Brien"

    def test_arithmetic_in_predicates(self):
        expr = self.where("quantity <= base + 10")
        assert expr.right.op == "+"

    def test_not_equal_variants(self):
        assert self.where("a <> 1").op == "<>"
        assert self.where("a != 1").op == "<>"


class TestDatesAndIntervals:
    def test_date_literal_days_since_1992(self):
        expr = parse_sql("select sum(x) from t where d >= date '1994-01-01';").where
        assert expr.right.value == 731

    def test_date_plus_interval_year_folds(self):
        expr = parse_sql(
            "select sum(x) from t where d < date '1994-01-01' + interval '1' year;"
        ).where
        assert expr.right.value == 731 + 365

    def test_interval_day_and_month(self):
        expr = parse_sql(
            "select sum(x) from t where d <= date '1998-12-01' - interval '90' day;"
        ).where
        assert isinstance(expr.right, Literal)
        expr2 = parse_sql(
            "select sum(x) from t where d < date '1994-01-01' + interval '3' month;"
        ).where
        assert expr2.right.value == 731 + 90

    def test_bad_interval_unit(self):
        with pytest.raises(TydiSyntaxError):
            parse_sql("select sum(x) from t where d < date '1994-01-01' + interval '1' fortnight;")

    def test_sql_comments_skipped(self):
        stmt = parse_sql("select sum(x) -- total\nfrom t;")
        assert stmt.tables == ["t"]


class TestPaperQueries:
    def test_all_evaluated_queries_parse(self):
        from repro.queries import QUERIES

        for query in QUERIES.values():
            stmt = parse_sql(query.sql)
            assert stmt.tables
            assert stmt.items

    def test_q19_structure(self):
        from repro.queries.q19 import SQL

        stmt = parse_sql(SQL)
        # Three OR-ed clauses.
        assert stmt.where.op == "or"
        assert stmt.tables == ["lineitem", "part"]
