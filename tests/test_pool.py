"""Tests of the multi-process worker pool (:mod:`repro.server.pool`).

What the pool must prove:

* **sharding is stable** -- the design-name hash is pinned by golden
  values (a salted or platform-dependent hash would shuffle every
  design's warm shard on restart);
* **differential identity** -- a ``workers=N`` service answers every
  request byte-identically to the ``workers=0`` in-process thread path
  (same envelopes, same IR, same backend outputs, same error shapes);
* **lifespan** -- a SIGKILLed worker is respawned, its shard's designs
  replayed, and the in-flight request retried; an exhausted restart
  budget degrades to structured errors instead of fork-bombing;
* **backpressure and drain** -- full bounded queues and draining
  services reject with the structured :class:`TydiBackpressureError` /
  :class:`TydiDrainingError` types, never by hanging or dropping;
* **the shutdown race is fixed** -- a shutdown racing an in-flight
  compile never drops the compile's response (the PR-5 transport
  force-closed connections; the drain path waits).

The pool requires ``fork``; the whole module is skipped where it is
unavailable (the service's ``workers=0`` path is tested everywhere else).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.errors import TydiBackpressureError, TydiDrainingError
from repro.server import CompileClient, CompileService, ServerThread
from repro.server.pool import POOLED_METHODS, WorkerPool, fork_available, shard_for
from repro.server.worker import read_frame, write_frame
from repro.testing import build_chain_design

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="worker pool requires the fork start method"
)


def _files(num_steps: int = 3) -> dict[str, str]:
    return {filename: text for text, filename in build_chain_design(num_steps)}


# -- sharding ------------------------------------------------------------------


def test_shard_for_is_pinned_by_golden_values():
    # These values must never change: a daemon restart (or a different
    # platform) must route every design to the same shard it warmed.
    golden = {
        "alpha": [0, 0, 2, 6],
        "beta": [0, 1, 1, 1],
        "gamma": [0, 0, 0, 0],
        "tpch_q6": [0, 1, 1, 5],
        "adder": [0, 1, 3, 3],
        "chain": [0, 1, 1, 5],
    }
    for name, expected in golden.items():
        assert [shard_for(name, n) for n in (1, 2, 4, 8)] == expected


def test_shard_for_spreads_designs():
    shards = [shard_for(f"design_{i}", 4) for i in range(200)]
    counts = [shards.count(k) for k in range(4)]
    assert sum(counts) == 200
    assert min(counts) > 20  # roughly uniform, no empty shard

    with pytest.raises(ValueError):
        shard_for("x", 0)


# -- the frame protocol --------------------------------------------------------


def test_frame_roundtrip_and_truncation():
    r, w = os.pipe()
    try:
        write_frame(w, ("job", 7, {"method": "ping"}))
        assert read_frame(r) == ("job", 7, {"method": "ping"})

        # A truncated frame (peer died mid-write) reads as None, not junk.
        os.write(w, b"\x00\x00\x00\x00\x00\x00\x00\x10abc")
        os.close(w)
        assert read_frame(r) is None
        assert read_frame(r) is None  # EOF afterwards
    finally:
        for fd in (r,):
            try:
                os.close(fd)
            except OSError:
                pass


def test_frame_header_bound_rejects_corrupt_lengths():
    r, w = os.pipe()
    try:
        os.write(w, (1 << 62).to_bytes(8, "big"))
        with pytest.raises(ValueError):
            read_frame(r)
    finally:
        os.close(r)
        os.close(w)


# -- differential identity: workers=N == workers=0 -----------------------------


def _drive(service: CompileService) -> list[dict]:
    """One fixed request script, returning every response envelope."""
    envelopes = []

    def send(method, **params):
        message = {"id": len(envelopes) + 1, "method": method}
        if params:
            message["params"] = params
        envelopes.append(service.handle_sync(message))

    send("open_design", design="alpha", files=_files(3))
    send("open_design", design="beta", files=_files(4))
    send("get_ir", design="alpha")
    send("get_ir", design="beta")
    send("update_file", design="alpha", filename="step1.td", text="const k = 1;\n")
    send("get_diagnostics", design="alpha")
    send("get_outputs", design="beta", target="ir")
    send("get_outputs", design="beta", target="bogus")  # backend error envelope
    send("get_ir", design="nope")  # unknown design: error envelope
    send("remove_file", design="beta", filename="missing.td")  # error envelope
    send("remove_design", design="beta")
    send("get_ir", design="beta")  # now unknown: error envelope
    return envelopes


def test_pooled_service_is_byte_identical_to_threaded():
    with CompileService(jobs=2) as threaded:
        reference = _drive(threaded)
    with CompileService(workers=2) as pooled:
        assert pooled.pool is not None
        observed = _drive(pooled)

    # Success envelopes (IR text, outputs, diagnostics, fingerprints) are
    # byte-identical.  Error envelopes match in type/stage/id; only the
    # "(designs: ...)" tail of unknown-design messages may differ, since a
    # worker legitimately lists its *shard*, not the whole session.
    import re

    def normalized(envelope):
        if envelope["ok"]:
            return envelope
        scrubbed = dict(envelope, error=dict(envelope["error"]))
        for key in ("message", "rendered"):
            scrubbed["error"][key] = re.sub(
                r"\(designs: [^)]*\)", "(designs: <elided>)", scrubbed["error"][key]
            )
        return scrubbed

    assert [normalized(e) for e in observed] == [normalized(e) for e in reference]

    # Sanity: the script exercised successes *and* structured errors.
    assert sum(1 for e in reference if e["ok"]) >= 7
    errors = [e for e in reference if not e["ok"]]
    assert len(errors) >= 4
    # update_file overwrote step1.td, so alpha also fails resolution --
    # compile errors, backend errors and session errors all round-trip
    # identically through the pool.
    assert {e["error"]["stage"] for e in errors} == {"workspace", "backend", "resolve"}


def test_pooled_methods_cover_every_design_addressed_method():
    # Every method with a 'design' parameter must route to its shard;
    # a new design-addressed method that forgets to register here would
    # silently run on the parent (where no designs live).
    design_addressed = {
        name
        for name, (param_names, _) in CompileService._SIGNATURES.items()
        if "design" in param_names
    }
    # watch_design is the one deliberate exception: the subscription is
    # per NDJSON connection so it lives on the parent, and the events it
    # pushes come from get_diagnostics/simulate_design calls that *do*
    # route to the owning shard.
    assert design_addressed == set(POOLED_METHODS) | {"watch_design"}


# -- lifespan: crash, respawn, replay, budget ----------------------------------


def test_sigkilled_worker_is_respawned_and_request_retried():
    with CompileService(workers=2) as service:
        with ServerThread(service) as server:
            with CompileClient(*server.address, connect_retry_for=5) as client:
                client.open_design("gamma", files=_files(3))
                ir_before = client.get_ir("gamma")

                shard = service.pool.shard_of("gamma")
                victim = service.pool.workers[shard]
                os.kill(victim.proc.pid, signal.SIGKILL)

                # The very next request on that shard hits the corpse,
                # respawns, replays the design mirror, retries -- and the
                # caller never notices.
                ir_after = client.get_ir("gamma")
                assert ir_after == ir_before
                assert service.pool.total_restarts == 1

                stats = client.stats()
                assert stats["pool"]["restarts"] == 1
                assert stats["pool"]["per_worker"][shard]["restarts"] == 1
                assert stats["pool"]["per_worker"][shard]["retries"] == 1
                client.shutdown()


def test_exhausted_restart_budget_degrades_to_structured_errors():
    with CompileService(workers=1, restart_budget=0) as service:
        envelope = service.handle_sync(
            {
                "id": 1,
                "method": "open_design",
                "params": {"design": "alpha", "files": _files(2)},
            }
        )
        assert envelope["ok"]
        os.kill(service.pool.workers[0].proc.pid, signal.SIGKILL)

        dead = service.handle_sync({"id": 2, "method": "get_ir", "params": {"design": "alpha"}})
        assert not dead["ok"]
        assert dead["error"]["type"] == "TydiServerError"
        assert "restart budget" in dead["error"]["message"]

        # The shard stays out of service (no fork-bombing), keeps answering.
        again = service.handle_sync({"id": 3, "method": "get_ir", "params": {"design": "alpha"}})
        assert not again["ok"]
        assert "restart budget" in again["error"]["message"]

        stats = service.handle_sync({"id": 4, "method": "stats"})["result"]
        assert stats["pool"]["per_worker"][0]["alive"] is False


# -- backpressure and drain ----------------------------------------------------


def test_full_worker_queue_rejects_with_backpressure_error():
    with WorkerPool(1, backlog=1) as pool:
        worker = pool.workers[0]
        open_future = pool.submit("open_design", {"design": "alpha", "files": _files(2)})
        assert open_future.result(timeout=30)["ok"]

        # Freeze the worker process: the dispatcher blocks mid-exchange,
        # so the bounded queue fills deterministically.
        os.kill(worker.proc.pid, signal.SIGSTOP)
        try:
            futures = [pool.submit("get_ir", {"design": "alpha"})]  # in flight
            with pytest.raises(TydiBackpressureError) as excinfo:
                for _ in range(3):  # one fills the backlog, the next rejects
                    futures.append(pool.submit("get_ir", {"design": "alpha"}))
            assert "back off" in str(excinfo.value)
        finally:
            os.kill(worker.proc.pid, signal.SIGCONT)
        for future in futures:
            assert future.result(timeout=30)["ok"]


def test_draining_pool_rejects_new_submits():
    pool = WorkerPool(1)
    assert pool.submit("open_design", {"design": "a", "files": {}}).result(30)["ok"]
    assert pool.drain(timeout=30) is True
    with pytest.raises(TydiDrainingError):
        pool.submit("get_ir", {"design": "a"})
    assert pool.drain(timeout=30) is True  # idempotent


def test_draining_service_rejects_compile_work_but_answers_observability():
    with CompileService(jobs=1) as service:
        service.draining.set()
        rejected = service.handle_sync(
            {"id": 1, "method": "open_design", "params": {"design": "a"}}
        )
        assert not rejected["ok"]
        assert rejected["error"]["type"] == "TydiDrainingError"
        assert rejected["error"]["stage"] == "server"

        # Operators can still watch the drain.
        assert service.handle_sync({"id": 2, "method": "ping"})["ok"]
        stats = service.handle_sync({"id": 3, "method": "stats"})
        assert stats["ok"]
        assert stats["result"]["server"]["draining"] is True


# -- the shutdown race (PR-5 regression) ---------------------------------------


def _slow_files() -> dict[str, str]:
    sources = build_chain_design(12)
    padded = {}
    for index, (text, filename) in enumerate(sources):
        pad = "\n".join(f"const pad_{index}_{i} = {i} * 3 + 1;" for i in range(80))
        padded[filename] = text + pad + "\n"
    return padded


@pytest.mark.parametrize("workers", [0, 2])
def test_shutdown_never_drops_inflight_responses(workers):
    # PR-5's transport force-closed connections on shutdown: a compile
    # still in flight lost its response.  The drain path must hold the
    # socket open until every accepted request has answered.
    service = CompileService(workers=workers) if workers else CompileService(jobs=2)
    with ServerThread(service) as server:
        outcome: dict[str, object] = {}

        def slow_query():
            try:
                with CompileClient(*server.address, connect_retry_for=5) as client:
                    client.open_design("slow", files=_slow_files())
                    outcome["ir"] = client.get_ir("slow")
            except Exception as exc:  # pragma: no cover - the regression
                outcome["error"] = exc

        worker_thread = threading.Thread(target=slow_query)
        worker_thread.start()
        time.sleep(0.05)  # let the compile get in flight
        with CompileClient(*server.address, connect_retry_for=5) as client:
            reply = client.shutdown()
        worker_thread.join(timeout=60)

    assert reply["stopping"] is True
    assert reply["drained"] is True
    assert "error" not in outcome, f"in-flight response dropped: {outcome.get('error')!r}"
    assert "Stream" in outcome["ir"] or "ir" in outcome


def test_concurrent_shutdowns_share_one_drain():
    with CompileService(jobs=2) as service:
        with ServerThread(service) as server:
            replies = []

            def send_shutdown():
                with CompileClient(*server.address, connect_retry_for=5) as client:
                    replies.append(client.shutdown())

            threads = [threading.Thread(target=send_shutdown) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
    assert len(replies) == 3
    assert all(reply["stopping"] for reply in replies)
    assert all(reply["drained"] for reply in replies)


# -- pipelined batches ---------------------------------------------------------


def test_request_batch_pipelines_and_reorders_by_id():
    with CompileService(workers=2) as service:
        with ServerThread(service) as server:
            with CompileClient(*server.address, connect_retry_for=5) as client:
                batch = [
                    ("open_design", {"design": "alpha", "files": _files(3)}),
                    ("open_design", {"design": "beta", "files": _files(4)}),
                ]
                opened = client.request_batch(batch)
                assert all(envelope["ok"] for envelope in opened)

                envelopes = client.request_batch(
                    [
                        ("get_ir", {"design": "alpha"}),
                        ("get_ir", {"design": "beta"}),
                        ("ping", {}),
                        ("get_ir", {"design": "missing"}),
                    ]
                )
                # Request order is restored regardless of completion order.
                assert envelopes[0]["ok"] and envelopes[0]["result"]["design"] == "alpha"
                assert envelopes[1]["ok"] and envelopes[1]["result"]["design"] == "beta"
                assert envelopes[2]["ok"] and "methods" in envelopes[2]["result"]
                assert not envelopes[3]["ok"]
                assert envelopes[3]["error"]["stage"] == "workspace"

                # The sync primitive still works on the same connection.
                assert client.ping()["workers"] == 2
                client.shutdown()


# -- stats aggregation and labels ----------------------------------------------


def test_pool_stats_aggregate_worker_workspaces():
    with CompileService(workers=2) as service:
        for index in range(4):
            envelope = service.handle_sync(
                {
                    "id": index + 1,
                    "method": "open_design",
                    "params": {"design": f"design_{index}", "files": _files(2)},
                }
            )
            assert envelope["ok"]
        service.handle_sync({"id": 9, "method": "get_ir", "params": {"design": "design_0"}})

        stats = service.handle_sync({"id": 10, "method": "stats"})["result"]
        # The aggregated workspace view keeps the single-process shape.
        assert stats["workspace"]["designs"]["total"] == 4
        assert stats["workspace"]["designs"]["fresh"] >= 1
        assert stats["server"]["workers"] == 2
        assert stats["server"]["latency"]["get_ir"]["latency"]["count"] == 1
        assert stats["server"]["latency"]["get_ir"]["ok"] == 1

        per_worker = stats["pool"]["per_worker"]
        assert [entry["worker"] for entry in per_worker] == [0, 1]
        assert sum(entry["designs"] for entry in per_worker) == 4
        labels = {entry["workspace"]["label"] for entry in per_worker}
        assert labels == {"worker-0", "worker-1"}

        report = service.handle_sync({"id": 11, "method": "get_report"})["result"]
        assert set(report["designs"]) == {f"design_{i}" for i in range(4)}


def test_pool_mode_rejects_explicit_workspace():
    from repro.workspace import Workspace

    with pytest.raises(ValueError):
        CompileService(workspace=Workspace(), workers=2)
