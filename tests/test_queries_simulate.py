"""Integration tests: simulated TPC-H designs match the numpy golden results."""

import numpy as np
import pytest

from repro.arrow.dataset import Table
from repro.queries import QUERIES
from repro.sim import detect_deadlock


class TestRandomDatasets:
    """Queries 1 and 6 are unselective enough to validate on random data."""

    def test_q6_matches_golden(self, tpch_tables):
        query = QUERIES["q6"]
        result, trace, simulator = query.simulate(tpch_tables)
        assert result == pytest.approx(query.golden(tpch_tables), rel=1e-9)

    def test_q6_no_deadlock(self, tpch_tables):
        _, _, simulator = QUERIES["q6"].simulate(tpch_tables)
        assert not detect_deadlock(simulator).deadlocked

    def test_q1_matches_golden(self, tpch_tables):
        query = QUERIES["q1"]
        result, _, _ = query.simulate(tpch_tables)
        golden = query.golden(tpch_tables)
        assert set(result) == set(golden)
        for key, group in golden.items():
            for measure, value in group.items():
                assert result[key][measure] == pytest.approx(value, rel=1e-9)

    def test_q1_no_sugar_variant_identical_result(self, tpch_tables):
        sugared, _, _ = QUERIES["q1"].simulate(tpch_tables)
        manual, _, _ = QUERIES["q1_no_sugar"].simulate(tpch_tables)
        assert manual == sugared

    def test_q19_matches_golden_on_medium_dataset(self, tpch_tables_medium):
        query = QUERIES["q19"]
        result, _, _ = query.simulate(tpch_tables_medium)
        golden = query.golden(tpch_tables_medium)
        assert golden > 0  # the skewed generator guarantees matches
        assert result == pytest.approx(golden, rel=1e-9)

    def test_q3_matches_golden_on_medium_dataset(self, tpch_tables_medium):
        query = QUERIES["q3"]
        result, _, _ = query.simulate(tpch_tables_medium)
        golden = query.golden(tpch_tables_medium)
        assert golden
        assert set(result) == set(golden)
        for order_key, revenue in golden.items():
            assert result[order_key] == pytest.approx(revenue, rel=1e-9)

    def test_q5_matches_golden_on_medium_dataset(self, tpch_tables_medium):
        query = QUERIES["q5"]
        result, _, _ = query.simulate(tpch_tables_medium)
        golden = query.golden(tpch_tables_medium)
        assert golden
        assert result == {k: pytest.approx(v, rel=1e-9) for k, v in golden.items()}


def _crafted_tables():
    """A tiny hand-made dataset with known matches for the selective queries."""
    part = Table(
        "part",
        {
            "p_partkey": np.arange(1, 5, dtype=np.int64),
            "p_brand": np.array(["Brand#12", "Brand#23", "Brand#34", "Brand#55"], dtype=object),
            "p_size": np.array([2, 5, 10, 40], dtype=np.int32),
            "p_container": np.array(["SM CASE", "MED BAG", "LG BOX", "JUMBO CAN"], dtype=object),
        },
    )
    customer = Table(
        "customer",
        {
            "c_custkey": np.array([1, 2], dtype=np.int64),
            "c_nationkey": np.array([8, 3], dtype=np.int64),  # 8 = INDIA (ASIA)
            "c_mktsegment": np.array(["BUILDING", "MACHINERY"], dtype=object),
        },
    )
    orders = Table(
        "orders",
        {
            "o_orderkey": np.array([1, 2, 3], dtype=np.int64),
            "o_custkey": np.array([1, 2, 1], dtype=np.int64),
            "o_orderdate": np.array([1000, 1300, 800], dtype=np.int64),
            "o_shippriority": np.zeros(3, dtype=np.int32),
        },
    )
    supplier = Table(
        "supplier",
        {
            "s_suppkey": np.array([1, 2], dtype=np.int64),
            "s_nationkey": np.array([8, 1], dtype=np.int64),
        },
    )
    nation = Table(
        "nation",
        {
            "n_nationkey": np.arange(25, dtype=np.int64),
            "n_regionkey": np.array(
                [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1],
                dtype=np.int64,
            ),
            "n_name": np.array(
                ["ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
                 "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
                 "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM",
                 "RUSSIA", "UNITED KINGDOM", "UNITED STATES"],
                dtype=object,
            ),
        },
    )
    region = Table(
        "region",
        {
            "r_regionkey": np.arange(5, dtype=np.int64),
            "r_name": np.array(["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"], dtype=object),
        },
    )
    lineitem = Table(
        "lineitem",
        {
            "l_orderkey": np.array([1, 2, 3, 1], dtype=np.int64),
            "l_partkey": np.array([1, 2, 3, 4], dtype=np.int64),
            "l_suppkey": np.array([1, 2, 2, 2], dtype=np.int64),
            "l_quantity": np.array([5.0, 15.0, 25.0, 50.0]),
            "l_extendedprice": np.array([1000.0, 2000.0, 3000.0, 4000.0]),
            "l_discount": np.array([0.10, 0.05, 0.0, 0.02]),
            "l_tax": np.zeros(4),
            "l_returnflag": np.array(["A", "N", "R", "A"], dtype=object),
            "l_linestatus": np.array(["F", "O", "F", "O"], dtype=object),
            "l_shipdate": np.array([1200, 1400, 900, 1250], dtype=np.int64),
            "l_commitdate": np.array([1210, 1410, 910, 1260], dtype=np.int64),
            "l_receiptdate": np.array([1220, 1420, 920, 1270], dtype=np.int64),
            "l_shipinstruct": np.array(
                ["DELIVER IN PERSON", "DELIVER IN PERSON", "NONE", "COLLECT COD"], dtype=object
            ),
            "l_shipmode": np.array(["AIR", "AIR REG", "RAIL", "SHIP"], dtype=object),
        },
    )
    return {
        "lineitem": lineitem,
        "part": part,
        "orders": orders,
        "customer": customer,
        "supplier": supplier,
        "nation": nation,
        "region": region,
    }


class TestCraftedDataset:
    """Hand-built rows whose expected answers are known by construction."""

    @pytest.fixture(scope="class")
    def tables(self):
        return _crafted_tables()

    def test_q19_selects_the_two_matching_rows(self, tables):
        # Rows 0 and 1 satisfy clause 1 and clause 2 respectively; rows 2, 3 fail
        # (wrong ship instruction / ship mode).
        expected = 1000.0 * 0.90 + 2000.0 * 0.95
        query = QUERIES["q19"]
        assert query.golden(tables) == pytest.approx(expected)
        result, _, _ = query.simulate(tables)
        assert result == pytest.approx(expected)

    def test_q3_building_segment_revenue_per_order(self, tables):
        # Customer 1 (BUILDING) has orders 1 and 3; only order 1's lineitems ship
        # after the cutoff with the order placed before it.
        query = QUERIES["q3"]
        golden = query.golden(tables)
        expected = {1: 1000.0 * 0.90 + 4000.0 * 0.98}
        assert golden == pytest.approx(expected)
        result, _, _ = query.simulate(tables)
        assert result == pytest.approx(expected)

    def test_q5_local_asia_supplier_revenue(self, tables):
        # Only lineitem 0: customer nation 8 == supplier nation 8 (INDIA, ASIA)
        # and its order date falls in 1994.
        query = QUERIES["q5"]
        golden = query.golden(tables)
        assert golden == pytest.approx({"INDIA": 1000.0 * 0.90})
        result, _, _ = query.simulate(tables)
        assert result == pytest.approx(golden)

    def test_q1_groups_every_row(self, tables):
        query = QUERIES["q1"]
        result, _, _ = query.simulate(tables)
        golden = query.golden(tables)
        assert set(result) == {("A", "F"), ("N", "O"), ("R", "F"), ("A", "O")}
        assert result == {
            key: {m: pytest.approx(v) for m, v in group.items()} for key, group in golden.items()
        }

    def test_q6_sums_matching_row(self, tables):
        # Only row 1 (discount 0.05, quantity 15, shipped 1400 -> outside 1994)
        # ... no rows match in 1994, so the answer is 0.
        query = QUERIES["q6"]
        assert query.golden(tables) == 0.0
        result, _, _ = query.simulate(tables)
        assert result == 0.0


class TestHarnessReports:
    """The paper's five evaluated queries through the simulation harness:
    every design simulates deadlock-free and folds into a picklable
    :class:`~repro.sim.harness.SimulationReport`."""

    @pytest.mark.parametrize("name", ["q1", "q3", "q5", "q6", "q19"])
    def test_query_simulates_deadlock_free(self, name, tpch_tables):
        report = QUERIES[name].simulate_report(tpch_tables)
        assert report.verdict == "ok" and not report.deadlocked
        assert report.deadlock is not None and not report.deadlock.deadlocked
        assert report.events_processed > 0
        assert report.outputs, f"{name} produced no output streams"
        wire = report.as_dict()
        assert wire["deadlock"]["deadlocked"] is False

    def test_report_plan_defaults_match_simulate(self, tpch_tables):
        query = QUERIES["q6"]
        result, _, _ = query.simulate(tpch_tables)
        report = query.simulate_report(tpch_tables)
        plan = query.default_plan()
        assert report.plan_fingerprint == plan.fingerprint()
        assert result == pytest.approx(query.golden(tpch_tables), rel=1e-9)
