"""Unit tests for runtime values and lexical scopes (immutability, shadowing)."""

import pytest

from repro.errors import TydiEvaluationError, TydiNameError
from repro.lang.values import (
    PARAM_KIND_CHECKS,
    ClockDomainValue,
    ImplValue,
    Scope,
    StreamletValue,
    TypeValue,
    describe_value,
)
from repro.spec.logical_types import Bit


class TestScope:
    def test_define_and_lookup(self):
        scope = Scope()
        scope.define("x", 42)
        assert scope.lookup("x") == 42

    def test_variables_are_immutable(self):
        scope = Scope()
        scope.define("x", 1)
        with pytest.raises(TydiEvaluationError):
            scope.define("x", 2)

    def test_shadowing_in_child_scope(self):
        outer = Scope()
        outer.define("x", 1)
        inner = outer.child()
        inner.define("x", 99)
        assert inner.lookup("x") == 99
        assert outer.lookup("x") == 1

    def test_lookup_walks_parents(self):
        outer = Scope()
        outer.define("width", 8)
        inner = outer.child().child()
        assert inner.lookup("width") == 8

    def test_undefined_raises(self):
        with pytest.raises(TydiNameError):
            Scope().lookup("nothing")

    def test_contains_and_defined_here(self):
        outer = Scope()
        outer.define("a", 1)
        inner = outer.child()
        assert inner.contains("a")
        assert not inner.defined_here("a")
        assert outer.defined_here("a")

    def test_local_names(self):
        scope = Scope()
        scope.define("a", 1)
        scope.define("b", 2)
        assert scope.local_names() == ["a", "b"]


class TestValueKinds:
    def test_describe_value(self):
        assert describe_value(3) == "int"
        assert describe_value(3.5) == "float"
        assert describe_value(True) == "bool"
        assert describe_value("x") == "string"
        assert describe_value([1]) == "array"
        assert describe_value(ClockDomainValue("clk")) == "clockdomain"
        assert describe_value(TypeValue(Bit(4))) == "type"

    def test_param_kind_checks(self):
        assert PARAM_KIND_CHECKS["int"](5)
        assert not PARAM_KIND_CHECKS["int"](True)
        assert not PARAM_KIND_CHECKS["int"](2.5)
        assert PARAM_KIND_CHECKS["float"](2.5)
        assert PARAM_KIND_CHECKS["float"](2)
        assert PARAM_KIND_CHECKS["string"]("hello")
        assert PARAM_KIND_CHECKS["bool"](False)
        assert PARAM_KIND_CHECKS["type"](TypeValue(Bit(1)))
        assert not PARAM_KIND_CHECKS["type"](Bit(1))
        assert PARAM_KIND_CHECKS["clockdomain"](ClockDomainValue("a"))

    def test_type_value_mangles_via_logical_type(self):
        assert TypeValue(Bit(8)).mangle_name() == "bit_8"

    def test_impl_and_streamlet_values(self):
        impl = ImplValue(name="adder_32", declaration=object())
        streamlet = StreamletValue(name="adder_s", declaration=object())
        assert "adder_32" in str(impl)
        assert "adder_s" in str(streamlet)
        assert PARAM_KIND_CHECKS["impl"](impl)
        assert not PARAM_KIND_CHECKS["impl"](streamlet)
