"""Unit and integration tests for the SQL -> Tydi-lang translator."""

import pytest

from repro.arrow.fletcher import fletcher_interface_source, reader_behaviors
from repro.arrow.schema import ArrowSchema
from repro.arrow.tpch import LINEITEM_SCHEMA, generate_tpch_data, golden_q1, golden_q6
from repro.errors import TydiEvaluationError
from repro.lang.compile import compile_sources
from repro.sim import Simulator
from repro.sql import parse_sql, translate_select


def compile_translation(translation, schemas):
    return compile_sources(
        [
            (fletcher_interface_source(schemas), "fletcher.td"),
            (translation.source, "query.td"),
        ],
        top=translation.top,
        project_name=translation.top,
    )


def simulate_translation(translation, schemas, tables_by_name):
    result = compile_translation(translation, schemas)
    simulator = Simulator(
        result.project,
        behaviors=reader_behaviors(schemas, tables_by_name),
        channel_capacity=4,
    )
    return simulator.run()


class TestTranslationStructure:
    def test_simple_sum(self):
        translation = translate_select(
            "select sum(l_quantity) as total from lineitem;", LINEITEM_SCHEMA, name="demo"
        )
        assert translation.top == "demo_i"
        assert translation.output_ports == ["total"]
        assert "sum_i<" in translation.source
        assert "lineitem_reader_i" in translation.source

    def test_where_produces_comparators_and_filter(self):
        translation = translate_select(
            "select sum(l_quantity) from lineitem where l_quantity < 10 and l_discount >= 0.05;",
            LINEITEM_SCHEMA,
        )
        assert "compare_lt_i" in translation.source
        assert "compare_ge_i" in translation.source
        assert "and_i<2>" in translation.source
        assert "filter_i<" in translation.source

    def test_in_list_becomes_or_of_equalities(self):
        translation = translate_select(
            "select count(*) from lineitem where l_shipmode in ('AIR', 'RAIL', 'SHIP');",
            LINEITEM_SCHEMA,
        )
        assert translation.source.count("compare_const_eq_i") == 3
        assert "or_i<3>" in translation.source

    def test_between_becomes_two_comparators(self):
        translation = translate_select(
            "select sum(l_discount) from lineitem where l_discount between 0.02 and 0.04;",
            LINEITEM_SCHEMA,
        )
        assert "compare_ge_i" in translation.source and "compare_le_i" in translation.source

    def test_group_by_two_columns_uses_combine2(self):
        translation = translate_select(
            "select sum(l_quantity) from lineitem group by l_returnflag, l_linestatus;",
            LINEITEM_SCHEMA,
        )
        assert "combine2_i" in translation.source
        assert "group_sum_i" in translation.source

    def test_unknown_column_rejected(self):
        with pytest.raises(TydiEvaluationError):
            translate_select("select sum(mystery) from lineitem;", LINEITEM_SCHEMA)

    def test_no_aggregate_rejected(self):
        with pytest.raises(TydiEvaluationError):
            translate_select("select l_quantity from lineitem;", LINEITEM_SCHEMA)

    def test_three_group_keys_rejected(self):
        with pytest.raises(TydiEvaluationError):
            translate_select(
                "select sum(l_quantity) from lineitem group by a, b, c;",
                ArrowSchema.of("lineitem", a="int64", b="int64", c="int64", l_quantity="decimal"),
            )

    def test_loc_is_counted(self):
        translation = translate_select("select sum(l_quantity) from lineitem;", LINEITEM_SCHEMA)
        assert translation.loc() > 10


class TestTranslatedDesignsCompile:
    def test_generated_design_passes_drc(self):
        translation = translate_select(
            "select sum(l_extendedprice * (1 - l_discount)) as rev from lineitem "
            "where l_quantity < 25;",
            LINEITEM_SCHEMA,
        )
        result = compile_translation(translation, [LINEITEM_SCHEMA])
        assert result.drc.passed()

    def test_generated_vhdl_nontrivial(self):
        from repro.vhdl.backend import VhdlBackend

        translation = translate_select(
            "select sum(l_quantity) from lineitem where l_discount >= 0.05;", LINEITEM_SCHEMA
        )
        result = compile_translation(translation, [LINEITEM_SCHEMA])
        assert VhdlBackend(result.project).total_loc() > 500


class TestTranslatedDesignsSimulate:
    """End-to-end: SQL text -> Tydi-lang -> Tydi-IR -> simulation == numpy golden."""

    @pytest.fixture(scope="class")
    def tables(self):
        return generate_tpch_data(150, seed=21)

    def test_translated_q6_matches_golden(self, tables):
        from repro.queries.q6 import SQL

        translation = translate_select(SQL, LINEITEM_SCHEMA, name="gen_q6")
        trace = simulate_translation(translation, [LINEITEM_SCHEMA], {"lineitem": tables["lineitem"]})
        values = trace.output_values(translation.output_ports[0])
        assert values[-1] == pytest.approx(golden_q6(tables), rel=1e-9)

    def test_translated_q1_matches_golden(self, tables):
        from repro.queries.q1 import SQL

        translation = translate_select(SQL, LINEITEM_SCHEMA, name="gen_q1")
        trace = simulate_translation(translation, [LINEITEM_SCHEMA], {"lineitem": tables["lineitem"]})
        golden = golden_q1(tables)
        sum_qty = dict(trace.output_values("sum_qty"))
        counts = dict(trace.output_values("count_order"))
        assert set(sum_qty) == set(golden)
        for key, group in golden.items():
            assert sum_qty[key] == pytest.approx(group["sum_qty"])
            assert counts[key] == group["count_order"]

    def test_translated_aggregate_without_where(self, tables):
        translation = translate_select(
            "select sum(l_quantity) as total, count(*) as rows from lineitem;",
            LINEITEM_SCHEMA,
            name="gen_totals",
        )
        trace = simulate_translation(translation, [LINEITEM_SCHEMA], {"lineitem": tables["lineitem"]})
        assert trace.output_values("total")[-1] == pytest.approx(float(tables["lineitem"]["l_quantity"].sum()))
        assert trace.output_values("rows")[-1] == tables["lineitem"].num_rows
