"""Benchmark: multi-process worker pool vs the single-process thread pool.

The acceptance benchmark of the PR-6 worker pool (:mod:`repro.server.pool`).
The serving model it measures: 8 concurrent clients, each opening and cold-
compiling its *own* design over a real TCP connection -- the many-client
load a shared compile daemon exists for.  Parse/evaluate/sugar/DRC are pure
Python, so the ``workers=0`` thread pool serializes on the GIL; ``workers=4``
forks four processes, shards the designs across them by name hash, and the
same load runs genuinely in parallel.

Asserted (on machines with >= 4 CPUs, i.e. the CI runners):

* **pooled cold throughput >= 2.5x threaded** for 4 workers x 8 clients on
  distinct designs;
* **zero worker restarts** under the load;
* **byte-identical IR** from both modes (the throughput must not come from
  computing something else).

The run always writes ``benchmark-artifacts/pool-throughput.json`` (both
wall times, the speedup, per-worker dispatch counters), which CI uploads
and ``benchmarks/compare_artifacts.py`` gates against the committed
baseline.  On smaller machines the numbers are still recorded; only the
ratio assertion is skipped (a 1-CPU box cannot show process parallelism).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import pytest

from conftest import run_once

from repro.server import CompileClient, CompileService, ServerThread
from repro.server.pool import fork_available
from repro.testing import build_chain_design

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="worker pool requires the fork start method"
)

ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))

WORKERS = 4
CLIENTS = 8

#: Eight design names chosen to shard exactly two per worker at WORKERS=4
#: (``shard_for`` is pinned by golden tests, so this layout is stable).
#: An uneven accidental layout would benchmark shard imbalance, not the pool.
DESIGN_NAMES = (
    "bench_00", "bench_09",  # shard 0
    "bench_01", "bench_08",  # shard 1
    "bench_02", "bench_04",  # shard 2
    "bench_03", "bench_05",  # shard 3
)


def _design_files(seed: int) -> dict[str, str]:
    """One per-client design: a padded chain where parsing dominates.

    Each design is textually distinct (the pad constants embed ``seed``),
    so nothing is shared between clients and every compile is genuinely
    cold in every mode.
    """
    files = {}
    for file_index, (text, filename) in enumerate(build_chain_design(7)):
        pad = "\n".join(
            f"const pad_{seed}_{file_index}_{i} = {i} * 3 + {seed + 1};"
            for i in range(60)
        )
        files[filename] = text + pad + "\n"
    return files


def _run_clients(address: tuple[str, int], designs: dict[str, dict[str, str]]):
    """All clients concurrently open + compile their design; returns
    (total wall seconds, {design: ir_text})."""
    irs: dict[str, str] = {}
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(designs) + 1)

    def one_client(name: str, files: dict[str, str]) -> None:
        try:
            with CompileClient(*address, connect_retry_for=5) as client:
                barrier.wait(timeout=30)
                client.open_design(name, files=files, options={"include_stdlib": False})
                irs[name] = client.get_ir(name)
        except BaseException as exc:  # pragma: no cover - fails the test below
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(name, files))
        for name, files in designs.items()
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)  # all connected: start the clock together
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    assert not errors, f"client failed: {errors[0]!r}"
    assert len(irs) == len(designs)
    return elapsed, irs


def test_pool_beats_thread_pool_on_concurrent_cold_compiles(benchmark):
    designs = {name: _design_files(seed) for seed, name in enumerate(DESIGN_NAMES)}

    # Mode A: the PR-5 single-process service, thread pool as wide as the
    # worker pool it competes with.
    with ServerThread(CompileService(jobs=WORKERS)) as server:
        threaded_time, threaded_irs = _run_clients(server.address, designs)
        with CompileClient(*server.address) as client:
            client.shutdown()

    # Mode B: the worker pool (forked post-warm, sharded by design name).
    service = CompileService(workers=WORKERS)
    with ServerThread(service) as server:
        def pooled_run():
            return _run_clients(server.address, designs)

        pooled_time, pooled_irs = run_once(benchmark, pooled_run)
        with CompileClient(*server.address) as client:
            stats = client.stats()
            client.shutdown()

    # Differential: the speed must not come from computing something else.
    assert pooled_irs == threaded_irs

    # Lifespan: the load ran without a single worker crash.
    assert stats["pool"]["restarts"] == 0
    per_worker = stats["pool"]["per_worker"]
    dispatched = [entry["dispatched"] for entry in per_worker]
    assert all(count > 0 for count in dispatched), f"idle shard: {dispatched}"

    speedup = threaded_time / pooled_time if pooled_time > 0 else float("inf")
    payload = {
        "workers": WORKERS,
        "clients": CLIENTS,
        "designs": len(designs),
        "cpu_count": os.cpu_count(),
        "threaded_cold_ms": round(threaded_time * 1000, 3),
        "pooled_cold_ms": round(pooled_time * 1000, 3),
        "speedup": round(speedup, 2),
        "restarts": stats["pool"]["restarts"],
        "dispatched_per_worker": dispatched,
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "pool-throughput.json").write_text(json.dumps(payload, indent=2))

    print(f"\nConcurrent cold compiles: {CLIENTS} clients, {len(designs)} designs")
    print(f"  threaded (jobs={WORKERS}):   {threaded_time * 1000:8.1f} ms")
    print(f"  pooled (workers={WORKERS}):  {pooled_time * 1000:8.1f} ms")
    print(f"  speedup:                     {speedup:8.2f}x")
    print(f"  dispatched per worker:       {dispatched}")

    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"only {os.cpu_count()} CPU(s): recorded the artifact, but process "
            f"parallelism cannot be asserted here (CI runners have >= {WORKERS})"
        )
    # Acceptance criterion: 4 workers serve 8 concurrent cold compiles at
    # >= 2.5x the single-process thread pool.
    assert speedup >= 2.5, f"pool only {speedup:.2f}x over the thread pool"
