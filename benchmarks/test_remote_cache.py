"""Benchmark: a cold worker with a warm remote cache vs a fully cold worker.

The acceptance benchmark of the remote L2 tier (:mod:`repro.pipeline.
remote` / :mod:`repro.server.cachesvc`): it models the fleet scenario the
tier exists for -- a fresh worker (empty memory, empty local disk) joining
a fleet whose shared cache server is already warm -- and asserts the
property the tier promises:

* **warm-remote >= 3x fully-cold** -- compiling a design whose artefacts
  are all present on the remote is at least three times faster than
  compiling it with no cache at all, because every tier of the staged
  pipeline is served over the wire instead of recomputed, and
* **identical artefacts** -- the remote-served result is byte-identical
  to the cold compile (the same promotion/corruption discipline the unit
  tests pin down).

The cold reference deliberately runs with *no* cache stack at all: wiring
a remote into the cold run would warm the server through write-behind and
turn the comparison into a self-fulfilling one.

The run also writes ``benchmark-artifacts/remote-cache.json`` (cold / warm
timings, speedup, client counters, server store stats) which CI uploads
and gates against the committed baseline via ``compare_artifacts.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.lang.compile import compile_sources
from repro.pipeline import CompilationCache, RemoteCacheClient
from repro.server.cachesvc import CacheServerThread

#: Where the JSON artifact lands (CI uploads this directory).
ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))


# The workload moved to the shared corpus module (the cold-compile benchmark
# gates the same design); the loop-expanded body is what makes it right for a
# *remote* cache benchmark too -- recomputing an artefact costs far more than
# deserialising it, the regime a shared cache server exists for.
from corpus import fleet_workload as _fleet_workload  # noqa: E402,F401
from corpus import wide_file as _wide_file  # noqa: E402,F401


def test_cold_worker_with_warm_remote_speedup(benchmark, tmp_path):
    sources = _fleet_workload()
    options = {"include_stdlib": False}

    # Fully cold reference: no cache stack at all (best of 3).
    def cold_compile():
        return compile_sources(sources, cache=None, **options)

    cold_result = run_once(benchmark, cold_compile)
    cold_times = []
    for _ in range(3):
        start = time.perf_counter()
        compile_sources(sources, cache=None, **options)
        cold_times.append(time.perf_counter() - start)
    cold_time = min(cold_times)

    with CacheServerThread() as svc:
        # Warm the fleet store through one worker's write-behind uploads.
        with RemoteCacheClient.from_url(svc.endpoint) as warmer:
            warm_cache = CompilationCache(cache_dir=tmp_path / "seed", remote=warmer)
            compile_sources(sources, cache=warm_cache, **options)
            assert warmer.flush(), "write-behind queue failed to drain"
        server_stats = svc.store.stats_snapshot()
        assert server_stats["entries"] > 0

        # The worker under test: fresh process state -- empty memory tiers,
        # empty local disk, its own connection -- only the remote is warm.
        # Best of 3, each round through a brand-new cache stack.
        warm_times = []
        client_stats = None
        for round_index in range(3):
            with RemoteCacheClient.from_url(svc.endpoint) as client:
                cold_worker = CompilationCache(
                    cache_dir=tmp_path / f"worker{round_index}", remote=client
                )
                start = time.perf_counter()
                warm_result = compile_sources(sources, cache=cold_worker, **options)
                warm_times.append(time.perf_counter() - start)
                client_stats = client.stats_snapshot()
        warm_time = min(warm_times)

        assert warm_result.ir_text() == cold_result.ir_text()
        assert client_stats["hits"] >= 1
        assert client_stats["corrupt"] == 0

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    payload = {
        "design_files": len(sources),
        "cold_oneshot_ms": round(cold_time * 1000, 3),
        "warm_remote_ms": round(warm_time * 1000, 3),
        "speedup": round(speedup, 2),
        "remote_client": client_stats,
        "server_store": server_stats,
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "remote-cache.json").write_text(json.dumps(payload, indent=2))

    print("\nCold worker with warm remote cache vs fully cold compile")
    print(f"  design:            {len(sources)} files")
    print(f"  fully cold:        {cold_time * 1000:8.1f} ms")
    print(f"  warm remote:       {warm_time * 1000:8.1f} ms")
    print(f"  speedup:           {speedup:8.1f}x")
    print(f"  client counters:   {client_stats}")

    # Acceptance criterion: a cold worker riding a warm remote beats a
    # fully cold worker by a wide margin.
    assert speedup >= 3.0, f"warm remote only {speedup:.1f}x faster than cold"
