"""The gated sim-service benchmark: warm repeat simulation via the ``sim:`` tier.

The acceptance criterion for the simulation subsystem: a repeat
simulation of an unchanged design must be served from the ``sim:``
StageCache tier at least :data:`TARGET_SPEEDUP` x faster than computing
it cold.  Both sessions pre-compile the design first (``Workspace.result``)
so the measurement isolates the simulation query itself -- the cold
session pays the event-driven engine plus both analyses over a
:data:`STREAM_LENGTH`-packet stimuli stream, the warm sessions are fresh
``Workspace`` instances over the same cache directory whose only option
is the disk tier.  The resulting ``speedup`` metric is gated by
``compare_artifacts.py`` against ``benchmarks/baselines/sim-service.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.sim import SimulationPlan
from repro.workspace import Workspace

ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))

#: Packets pushed through the pipeline; long enough that the engine run
#: dwarfs the constant costs on any plausible machine.
STREAM_LENGTH = 1500

#: The acceptance floor: a warm repeat must beat the cold run by this much.
TARGET_SPEEDUP = 3.0

WARM_ROUNDS = 5

PIPELINE = (
    "type num = Stream(Bit(32), d=1);\n"
    "streamlet top_s { values: num in, total: num out, }\n"
    "impl top_i of top_s {\n"
    "    instance k(const_int_generator_i<type num, 10>),\n"
    "    instance add(adder_i<type num, type num>),\n"
    "    instance acc(sum_i<type num, type num>),\n"
    "    values => add.lhs,\n"
    "    k.output => add.rhs,\n"
    "    add.output => acc.input,\n"
    "    acc.output => total,\n"
    "}\n"
    "top top_i;\n"
)


def _session(cache_dir, plan):
    """A fresh Workspace over ``cache_dir`` with the design compiled, and the
    wall time of its first ``simulate`` call in milliseconds."""
    workspace = Workspace(cache_dir=cache_dir)
    workspace.add_design("pipe", {"pipe.td": PIPELINE})
    workspace.result("pipe")  # compile outside the timed window
    start = time.perf_counter()
    report = workspace.simulate("pipe", plan)
    elapsed_ms = (time.perf_counter() - start) * 1000
    return workspace, report, elapsed_ms


def _measure(cache_dir, plan):
    cold_ws, cold_report, cold_ms = _session(cache_dir, plan)
    assert cold_ws.cache.stages.stats.sim_misses == 1

    warm_runs = []
    warm_report = None
    for _ in range(WARM_ROUNDS):
        warm_ws, warm_report, warm_ms = _session(cache_dir, plan)
        assert warm_ws.cache.stages.stats.sim_hits == 1
        assert warm_ws.cache.stages.stats.sim_misses == 0
        warm_runs.append(warm_ms)
    return cold_report, warm_report, cold_ms, warm_runs


def test_warm_simulation_speedup(benchmark, tmp_path):
    plan = SimulationPlan(
        stimuli={"values": list(range(STREAM_LENGTH))}, channel_capacity=4
    )
    cold_report, warm_report, cold_ms, warm_runs = run_once(
        benchmark, lambda: _measure(tmp_path, plan)
    )

    # The warm report must be the cold one, byte for byte, not merely fast.
    assert cold_report.verdict == "ok"
    assert len(cold_report.outputs["total"]) == 1
    assert json.dumps(warm_report.as_dict(), sort_keys=True) == json.dumps(
        cold_report.as_dict(), sort_keys=True
    )

    warm_ms = min(warm_runs)
    speedup = cold_ms / warm_ms

    payload = {
        "benchmark": "sim-service",
        "stream_length": STREAM_LENGTH,
        "warm_rounds": WARM_ROUNDS,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "warm_runs_ms": [round(value, 3) for value in warm_runs],
        "speedup": round(speedup, 3),
        "target_speedup": TARGET_SPEEDUP,
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "sim-service.json").write_text(json.dumps(payload, indent=2))

    print(f"\nrepeat simulation of a {STREAM_LENGTH}-packet stream (sim: disk tier):")
    print(f"  cold (engine + analyses): {cold_ms:.1f} ms")
    print(f"  warm (best of {WARM_ROUNDS}): {warm_ms:.2f} ms")
    print(f"  speedup: {speedup:.1f}x (floor: {TARGET_SPEEDUP}x)")

    assert speedup >= TARGET_SPEEDUP, (
        f"warm simulation is only {speedup:.2f}x the cold run "
        f"({warm_ms:.2f} ms vs {cold_ms:.1f} ms; floor: {TARGET_SPEEDUP}x)"
    )
