"""Benchmark / regeneration of Figure 4: automatic voider and duplicator insertion.

Figure 4 shows the paper's ``b0 = a + 10; b1 = a * 2`` example before and
after sugaring.  The benchmark regenerates that figure from a live compilation
and additionally measures the effect of sugaring on a real design (TPC-H Q1):
the hand-desugared variant needs more query-logic LoC for the same hardware,
which is the "design effort saved by sugaring" the paper reports
(402 -> 284 LoC; here proportionally similar).
"""

from conftest import run_once

from repro.report.figures import figure4
from repro.queries import QUERIES
from repro.utils.text import count_loc


def test_figure4_sugaring(benchmark, compiled_queries):
    text = run_once(benchmark, figure4)
    print("\n" + text)

    # The regenerated figure shows both states and the inserted components.
    assert "before sugaring" in text and "after sugaring" in text
    assert "duplicator" in text and "voider" in text
    assert "inserted 1 duplicator(s) and 1 voider(s)" in text

    # Quantified on TPC-H Q1: sugaring removes the need for hand-written
    # duplicators/voiders, saving query-logic lines while the DRC still passes.
    sugared = QUERIES["q1"]
    manual = QUERIES["q1_no_sugar"]
    sugared_loc = count_loc(sugared.query_source, "tydi")
    manual_loc = count_loc(manual.query_source, "tydi")
    saved = manual_loc - sugared_loc
    print(f"\nTPC-H Q1 query logic: {manual_loc} LoC hand-desugared vs {sugared_loc} LoC sugared "
          f"({saved} LoC saved, {100 * saved / manual_loc:.0f}%)")
    assert saved > 0

    report = compiled_queries["q1"].sugaring
    print(f"sugaring on Q1 inserted {report.duplicators_inserted} duplicator(s) and "
          f"{report.voiders_inserted} voider(s) automatically")
    assert report.duplicators_inserted >= 3
    assert report.voiders_inserted >= 8
    assert compiled_queries["q1"].drc.passed()
    assert compiled_queries["q1_no_sugar"].drc.passed()
