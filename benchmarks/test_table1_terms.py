"""Benchmark / regeneration of Table I: Tydi-spec and Tydi-IR terminology.

The table is regenerated from the implementing classes, so this doubles as a
check that every term of the paper's Table I has a counterpart in the code.
"""

from conftest import run_once

from repro.report.tables import table1

PAPER_TERMS = [
    "Null",
    "Bit(x)",
    "Group(x,y)",
    "Union(x,y)",
    "Stream(x)",
    "Port",
    "Streamlet",
    "Implementation",
    "Connection",
    "Instance",
    "Clock domain",
]


def test_table1_terms(benchmark):
    text = run_once(benchmark, table1)
    print("\n" + text)
    for term in PAPER_TERMS:
        assert term in text, f"paper term {term!r} missing from regenerated Table I"
    # Same number of rows as the paper's table (11 terms + header + separator).
    assert len(text.splitlines()) == len(PAPER_TERMS) + 3
