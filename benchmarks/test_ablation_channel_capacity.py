"""Ablation: effect of stream-buffer depth (channel capacity) on congestion.

DESIGN.md calls out the simulator's bounded per-connection queues as the
mechanism that models handshake backpressure.  This ablation runs TPC-H Q6 on
the same dataset with different channel capacities and reports the blocked
time that the bottleneck analysis attributes to the most congested
connection: deeper buffers absorb the latency imbalance between the predicate
path and the data path, so blockage shrinks while the functional result is
unchanged.
"""

import pytest
from conftest import run_once

from repro.queries import QUERIES
from repro.sim import analyze_bottlenecks


def test_ablation_channel_capacity(benchmark, tpch_tables):
    query = QUERIES["q6"]
    golden = query.golden(tpch_tables)
    capacities = (1, 2, 4, 8)

    def run_sweep():
        results = {}
        for capacity in capacities:
            value, trace, _ = query.simulate(tpch_tables, channel_capacity=capacity)
            report = analyze_bottlenecks(trace)
            total_blocked = sum(entry.blocked_time for entry in report.entries)
            total_waits = sum(entry.average_queue_wait * entry.packets for entry in report.entries)
            results[capacity] = {
                "value": value,
                "blocked": total_blocked,
                "queue_wait": total_waits,
                "end_time": trace.end_time,
            }
        return results

    results = run_once(benchmark, run_sweep)

    print("\nchannel-capacity ablation on TPC-H Q6 "
          f"({tpch_tables['lineitem'].num_rows} lineitem rows)")
    for capacity in capacities:
        entry = results[capacity]
        print(
            f"  capacity={capacity}: blocked {entry['blocked']:>6} cycle-packets, "
            f"aggregate queue wait {entry['queue_wait']:>9.0f}, "
            f"finished at t={entry['end_time']}"
        )

    # Correctness is independent of buffering depth.
    for capacity in capacities:
        assert results[capacity]["value"] == pytest.approx(golden, rel=1e-9)

    # Deeper buffers never increase source blockage, and the shallowest
    # configuration is the most congested one.
    blocked = [results[c]["blocked"] for c in capacities]
    assert blocked[0] == max(blocked)
    assert blocked[-1] == min(blocked)
