"""Benchmark: per-implementation backend-output caching (repro.backends).

Not a paper artefact but an infrastructure benchmark for the pluggable
backend layer: it emits the full TPC-H compile suite (every Table-IV
design) under every built-in backend (``vhdl``, ``ir``, ``dot``) and
asserts the property the backend-output cache promises:

* **warm >= 2x cold** -- after a one-file edit of one design, re-emitting
  the *whole* suite against a warm :class:`~repro.pipeline.stages.
  StageCache` is at least twice as fast as cold emission, because every
  implementation the edit did not touch serves its unit output from the
  cache, and
* **warm == cold** -- the warm outputs are byte-identical to uncached
  emission of the same projects.
"""

import time

from conftest import run_once

from repro.backends import get_backend
from repro.lang.compile import compile_sources
from repro.pipeline import StageCache
from repro.queries import ALL_QUERIES

TARGETS = ("vhdl", "ir", "dot")


def _emit_suite_cold(projects, backends):
    return {
        (name, backend.name): backend.emit(project)
        for name, project in projects.items()
        for backend in backends
    }


def _emit_suite_warm(projects, backends, cache):
    return {
        (name, backend.name): cache.emit_backend(project, backend)
        for name, project in projects.items()
        for backend in backends
    }


def test_backend_emission_one_file_edit_speedup(benchmark, compiled_queries):
    projects = {name: result.project for name, result in compiled_queries.items()}
    backends = [get_backend(target) for target in TARGETS]

    # Cold reference: uncached emission of the full suite (best of 3).
    cold_outputs = run_once(benchmark, lambda: _emit_suite_cold(projects, backends))
    cold_times = []
    for _ in range(3):
        start = time.perf_counter()
        _emit_suite_cold(projects, backends)
        cold_times.append(time.perf_counter() - start)
    cold_time = min(cold_times)

    # Warm the per-implementation unit cache over the unedited suite.
    cache = StageCache()
    _emit_suite_warm(projects, backends, cache)

    # One-file edit of the largest design (q19): recompile it from edited
    # sources, leaving every other design -- and every implementation the
    # edit does not touch -- fingerprint-identical.
    edited_job = ALL_QUERIES[-1].compile_job()
    text, filename = edited_job.sources[0]
    edited_sources = ((text + "\n// one-line edit\n", filename),) + edited_job.sources[1:]
    options = edited_job.options()
    options.pop("targets")
    edited_result = compile_sources(list(edited_sources), **options)
    warm_projects = dict(projects)
    warm_projects[edited_job.name] = edited_result.project

    cache.stats.reset()
    warm_outputs = _emit_suite_warm(warm_projects, backends, cache)
    first_warm_stats = cache.stats.as_dict()
    warm_times = []
    for _ in range(3):
        start = time.perf_counter()
        _emit_suite_warm(warm_projects, backends, cache)
        warm_times.append(time.perf_counter() - start)
    warm_time = min(warm_times)

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    total_files = sum(len(files) for files in cold_outputs.values())
    print("\nBackend emission over the TPC-H suite (targets: %s)" % ", ".join(TARGETS))
    print(f"  designs x backends:  {len(projects)} x {len(backends)} ({total_files} files)")
    print(f"  cold emission:       {cold_time * 1000:8.1f} ms")
    print(f"  warm re-emit (edit): {warm_time * 1000:8.1f} ms")
    print(f"  speedup:             {speedup:8.1f}x")
    print(f"  unit cache:          {first_warm_stats}")

    # The edit-touched design aside, every unit must come from the cache.
    assert first_warm_stats["backend_hits"] > 0

    # Warm output is byte-identical to cold for the unedited designs.
    for key, files in cold_outputs.items():
        name, _ = key
        if name != edited_job.name:
            assert list(warm_outputs[key].items()) == list(files.items()), key

    # Acceptance criterion: warm re-emit after a one-file edit >= 2x faster
    # than cold emission of the full suite.
    assert speedup >= 2.0, f"warm backend cache only {speedup:.1f}x faster than cold"
