"""Shared synthetic workloads for the benchmark suite.

The canonical workload is the 16-file "fleet" design: 15 files of
``for``-expanded serial chains plus a top-level wiring them in series.
Evaluation expands a few AST nodes per file into ``width`` instances and
connections (then sugaring and the DRC walk the expanded graph), so the
workload exercises every frontend stage in realistic proportions.  It was
born in ``test_remote_cache.py`` and is now shared with the cold-compile
benchmark, so both gate the *same* design.
"""

from __future__ import annotations


def wide_file(index: int, width: int) -> tuple[str, str]:
    """One file: a ``width``-deep serial chain built by a ``for`` loop."""
    return (
        f"""
type link{index}_t = Stream(Bit(8), d=1);
streamlet step{index}_s {{ i: link{index}_t in, o: link{index}_t out, }}
external impl step{index}_i of step{index}_s;
streamlet wide{index}_s {{ feed: link{index}_t in, result: link{index}_t out, }}
impl wide{index}_i of wide{index}_s {{
    instance pu(step{index}_i) [{width}],
    feed => pu[0].i,
    for i in 0->{width - 1} {{
        pu[i].o => pu[i+1].i,
    }}
    pu[{width - 1}].o => result,
}}
""",
        f"wide{index}.td",
    )


def fleet_workload(num_files: int = 16, width: int = 160) -> list[tuple[str, str]]:
    """N files of for-expanded chains plus a top wiring them in series."""
    sources = [wide_file(index, width) for index in range(num_files - 1)]
    last = num_files - 2
    lines = [
        "streamlet top_s { feed: link0_t in, result: link%d_t out, }" % last,
        "impl top_i of top_s {",
    ]
    for index in range(num_files - 1):
        lines.append(f"    instance w{index}(wide{index}_i),")
    lines.append("    feed => w0.feed,")
    for index in range(num_files - 2):
        lines.append(f"    w{index}.result => w{index + 1}.feed,")
    lines.append(f"    w{last}.result => result,")
    lines.append("}")
    lines.append("top top_i;")
    sources.append(("\n".join(lines) + "\n", "top.td"))
    return sources
