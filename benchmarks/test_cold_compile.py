"""The gated cold-compile benchmark: frontend end-to-end, everything cold.

This is the regression floor under the profile-driven frontend
optimisations (dispatch-table lexer, slotted AST, interned logical types,
IR name indexes, stdlib AST snapshot): a cold compile of the canonical
16-file fleet design must stay >= :data:`TARGET_SPEEDUP` x faster than the
committed *pre-optimisation* wall time, and the resulting ``speedup``
metric is gated by ``compare_artifacts.py`` against
``benchmarks/baselines/cold-compile.json``.

Machine robustness: the pre-optimisation time was measured on one concrete
machine, so asserting against it raw would flake on slower hardware.  A
tiny pure-Python calibration loop is timed alongside
(:func:`_calibrate`), and the expected pre-optimisation time is scaled by
``calibration_now / REFERENCE_CALIBRATION_S`` -- a machine 2x slower at
the calibration loop is allowed 2x the wall time.  Both reference numbers
were measured in the same session on the same machine, immediately before
the optimisations landed.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once
from corpus import fleet_workload

from repro.lang import compile as compile_mod
from repro.lang.compile import CompileOptions, run_pipeline
from repro.profiling import PROFILER
from repro.spec.logical_types import clear_intern_table

ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))

#: Cold 16-file compile (stdlib included), best of 5, measured immediately
#: before the frontend optimisations on the reference machine.
PRE_OPT_COLD_MS = 168.8

#: What the same machine scored on :func:`_calibrate` in the same session.
REFERENCE_CALIBRATION_S = 0.0197

#: The acceptance floor: cold compile must be at least this much faster
#: than the (machine-scaled) pre-optimisation time.
TARGET_SPEEDUP = 1.5

ROUNDS = 5


def _calibrate() -> float:
    """Best-of-3 wall time of a fixed pure-Python loop (machine speed proxy)."""
    best = None
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(500_000):
            total += i % 7
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert total > 0
    return best


def _cold_runs(sources, options) -> tuple[list[float], object]:
    """Wall-clock one fully cold ``run_pipeline`` per round, in milliseconds.

    "Cold" means no caches anywhere: ``run_pipeline`` itself never touches
    the pipeline caches, and the two process-level warm spots -- the
    memoised stdlib AST and the logical-type intern table -- are dropped
    before every round.  (The stdlib *snapshot* stays: deserialising it is
    the shipped cold path.)
    """
    runs: list[float] = []
    result = None
    for _ in range(ROUNDS):
        compile_mod._parsed_stdlib.cache_clear()
        clear_intern_table()
        start = time.perf_counter()
        result = run_pipeline(sources, options)
        runs.append((time.perf_counter() - start) * 1000)
    return runs, result


def test_cold_compile_speedup(benchmark):
    sources = fleet_workload()
    options = CompileOptions()

    was_enabled = PROFILER.enabled
    PROFILER.enable()
    PROFILER.reset()
    try:
        runs, result = run_once(benchmark, lambda: _cold_runs(sources, options))
        profile = PROFILER.snapshot()["stages"]
    finally:
        if not was_enabled:
            PROFILER.disable()

    # The workload must actually compile (and compile *the* fleet design).
    assert not result.diagnostics.has_errors()
    stats = result.project.statistics()
    assert stats["instances"] > 2000, "fleet workload shrank; benchmark is meaningless"

    calibration = _calibrate()
    cold_ms = min(runs)
    scaled_pre_opt_ms = PRE_OPT_COLD_MS * (calibration / REFERENCE_CALIBRATION_S)
    speedup = scaled_pre_opt_ms / cold_ms
    files_per_second = len(sources) / (cold_ms / 1000)

    payload = {
        "benchmark": "cold-compile",
        "files": len(sources),
        "rounds": ROUNDS,
        "cold_ms": round(cold_ms, 3),
        "runs_ms": [round(value, 3) for value in runs],
        "calibration_s": round(calibration, 6),
        "reference_calibration_s": REFERENCE_CALIBRATION_S,
        "pre_opt_cold_ms": PRE_OPT_COLD_MS,
        "scaled_pre_opt_ms": round(scaled_pre_opt_ms, 3),
        "speedup": round(speedup, 3),
        "files_per_second": round(files_per_second, 1),
        "target_speedup": TARGET_SPEEDUP,
        "profile": profile,
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "cold-compile.json").write_text(json.dumps(payload, indent=2))

    print("\ncold compile of the 16-file fleet design (all caches cold):")
    print(f"  best of {ROUNDS}: {cold_ms:.1f} ms ({files_per_second:.0f} files/s)")
    print(
        f"  pre-optimisation reference: {PRE_OPT_COLD_MS:.1f} ms "
        f"(scaled to this machine: {scaled_pre_opt_ms:.1f} ms)"
    )
    print(f"  speedup: {speedup:.2f}x (floor: {TARGET_SPEEDUP}x)")

    assert speedup >= TARGET_SPEEDUP, (
        f"cold compile regressed: {cold_ms:.1f} ms is only "
        f"{speedup:.2f}x the scaled pre-optimisation time "
        f"{scaled_pre_opt_ms:.1f} ms (floor: {TARGET_SPEEDUP}x)"
    )
