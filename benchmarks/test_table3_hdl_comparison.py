"""Benchmark / regeneration of Table III: comparison with other high-level HDLs.

Table III is a qualitative literature table; we regenerate it verbatim and
check the Tydi-lang row's claims against the implementation (typed streams
built in, templates supported, VHDL output).
"""

from conftest import run_once

from repro.report.tables import HDL_COMPARISON, table3


def test_table3_hdl_comparison(benchmark, compiled_queries):
    text = run_once(benchmark, table3)
    print("\n" + text)

    languages = [row[0] for row in HDL_COMPARISON]
    assert languages == ["Genesis2", "Clash", "Vitis HLS", "CHISEL", "Kamel", "Veriscala", "Tydi-lang"]

    # Verify the Tydi-lang row's claims against the living toolchain:
    tydi_row = HDL_COMPARISON[-1]
    assert "typed stream" in tydi_row[3]
    assert "VHDL" in tydi_row[4]

    # "built-in typed stream": every port of every compiled query design is a
    # logical Stream type.
    from repro.spec.logical_types import Stream

    q6 = compiled_queries["q6"].project
    assert all(
        isinstance(port.logical_type, Stream)
        for streamlet in q6.streamlets.values()
        for port in streamlet.ports
    )

    # "OOP with templates": the q6 design instantiated templated stdlib parts.
    assert any("compare_ge_i" in name for name in q6.implementations)
