"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints it,
so running ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation artefacts in one go.  Heavyweight artefacts (the compiled TPC-H
designs and the synthetic dataset) are built once per session.
"""

from __future__ import annotations

import pytest

from repro.arrow.tpch import generate_tpch_data


@pytest.fixture(scope="session")
def tpch_tables():
    """The dataset used by the simulation-backed benchmarks."""
    return generate_tpch_data(800, seed=5)


@pytest.fixture(scope="session")
def compiled_queries():
    """Compile the whole suite once, through the parallel batch driver."""
    from repro.pipeline import CompilationCache
    from repro.queries import compile_all

    return compile_all(cache=CompilationCache(), executor="thread")


def run_once(benchmark, func):
    """Run a benchmark exactly once (the artefacts are deterministic and the
    heavier ones compile six full designs; statistical repetition adds nothing)."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
