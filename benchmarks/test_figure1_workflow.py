"""Benchmark / regeneration of Figure 1: the Tydi toolchain workflow.

The figure is rendered as text, and the benchmark walks the *actual* workflow
end to end for a small design: source -> frontend -> Tydi-IR -> VHDL, plus
simulator -> Tydi testbench -> VHDL testbench, plus bottleneck analysis --
every box of the figure is exercised by a real artefact.
"""

from conftest import run_once

from repro.lang import compile_project
from repro.report.figures import figure1
from repro.sim import Simulator, analyze_bottlenecks
from repro.sim import testbench_from_trace as make_testbench
from repro.vhdl import generate_vhdl, generate_vhdl_testbench

SOURCE = """
type sample = Stream(Bit(16), d=1);
streamlet scaler_s { raw: sample in, scaled: sample out, }
impl scaler_i of scaler_s {
    instance gain(const_int_generator_i<type sample, 3>),
    instance mul(multiplier_i<type sample, type sample>),
    raw => mul.lhs,
    gain.output => mul.rhs,
    mul.output => scaled,
}
top scaler_i;
"""


def test_figure1_workflow(benchmark):
    def workflow():
        artefacts = {}
        result = compile_project(SOURCE)                       # frontend
        artefacts["ir"] = result.ir_text()                     # Tydi IR
        artefacts["vhdl"] = generate_vhdl(result.project)      # backend -> VHDL
        simulator = Simulator(result.project)                  # Tydi simulator
        simulator.drive("raw", [1, 2, 3, 4])
        trace = simulator.run()
        artefacts["trace"] = trace
        artefacts["bottleneck"] = analyze_bottlenecks(trace)   # bottleneck analysis
        tb = make_testbench(simulator, trace)                  # Tydi testbench
        artefacts["tydi_tb"] = tb.emit()
        artefacts["vhdl_tb"] = generate_vhdl_testbench(result.project, tb)  # VHDL testbench
        return artefacts

    artefacts = run_once(benchmark, workflow)
    print("\n" + figure1())
    print("\nartefacts produced while walking the workflow:")
    print(f"  Tydi-IR:         {len(artefacts['ir'].splitlines())} lines")
    print(f"  VHDL files:      {len(artefacts['vhdl'])}")
    print(f"  simulated output: {artefacts['trace'].output_values('scaled')}")
    print(f"  Tydi testbench:  {len(artefacts['tydi_tb'].splitlines())} lines")
    print(f"  VHDL testbench:  {len(artefacts['vhdl_tb'].splitlines())} lines")

    assert artefacts["trace"].output_values("scaled") == [3, 6, 9, 12]
    assert "streamlet scaler_s" in artefacts["ir"]
    assert any(name == "scaler_i.vhd" for name in artefacts["vhdl"])
    assert "expect scaled" in artefacts["tydi_tb"]
    assert "entity scaler_i_tb" in artefacts["vhdl_tb"]
    assert artefacts["bottleneck"].entries
