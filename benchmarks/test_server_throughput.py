"""Benchmark: served warm requests vs cold one-shot compilation.

Not a paper artefact but the acceptance benchmark of the compile service
(:mod:`repro.server`): it models the daemon's reason to exist -- many
small edit/re-query requests against one long-lived shared workspace --
and asserts the property the service promises:

* **warm served >= 3x cold** -- an ``update_file`` + ``get_ir`` round
  trip through a real TCP connection (client serialisation, server
  dispatch, compile-pool hop and all) is at least three times faster than
  a fresh one-shot ``compile_sources`` of the same design, because the
  served session re-parses only the edited file through the warm stage
  cache.  This is the served sibling of the PR-4 edit-loop benchmark
  (``test_workspace_editloop.py``), with the transport on the measured
  path.
* **served == one-shot** -- the final served IR is byte-identical to a
  fresh compile of the final sources (the full property lives in
  ``tests/test_server_stress.py``).

The run writes ``benchmark-artifacts/server-throughput.json`` (cold/warm
timings, speedup, per-request stats) which CI uploads, so served-request
latency is tracked per commit.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.lang.compile import compile_sources
from repro.server import CompileClient, CompileService, ServerThread
from repro.testing import build_chain_design

#: Where the JSON artifact lands (CI uploads this directory).
ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))


def _edit_workload(num_files: int = 16, decls_per_file: int = 100):
    """The PR-4 edit-loop workload: an N-file design where parsing dominates."""
    sources = build_chain_design(num_files - 1)
    padded = []
    for file_index, (text, name) in enumerate(sources):
        pad = "\n".join(
            f"const pad_{file_index}_{i} = {i} * 3 + 1;" for i in range(decls_per_file)
        )
        padded.append((text + pad + "\n", name))
    return padded


def test_served_requests_beat_cold_oneshot(benchmark):
    sources = _edit_workload()
    options = {"include_stdlib": False}

    # Cold reference: a fresh one-shot compile, no cache of any kind
    # (best of 3, timing noise guard).
    def cold_compile():
        return compile_sources(sources, cache=None, **options)

    cold_result = run_once(benchmark, cold_compile)
    cold_times = []
    for _ in range(3):
        start = time.perf_counter()
        compile_sources(sources, cache=None, **options)
        cold_times.append(time.perf_counter() - start)
    cold_time = min(cold_times)

    with ServerThread(CompileService(jobs=2)) as server:
        with CompileClient(*server.address) as client:
            client.open_design(
                "chain",
                files={filename: text for text, filename in sources},
                options=options,
            )
            client.get_ir("chain")  # warm the memo and the stage cache

            # The served edit loop: distinct one-file edits, each a full
            # update_file + get_ir round trip over the socket.
            warm_times = []
            final_sources = list(sources)
            for round_index in range(3):
                text, filename = sources[round_index]
                edited_text = text + f"const edit_{round_index} = {round_index};\n"
                final_sources[round_index] = (edited_text, filename)
                start = time.perf_counter()
                client.update_file("chain", filename, edited_text)
                served_ir = client.get_ir("chain")
                warm_times.append(time.perf_counter() - start)
            warm_time = min(warm_times)

            stats = client.stats()
            client.shutdown()

    # The served answer is byte-identical to a fresh one-shot compile of
    # the fully-edited state.
    reference = compile_sources(final_sources, cache=None, **options)
    assert served_ir == reference.ir_text()

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    payload = {
        "design_files": len(sources),
        "cold_oneshot_ms": round(cold_time * 1000, 3),
        "warm_served_ms": round(warm_time * 1000, 3),
        "speedup": round(speedup, 2),
        "server": stats["server"],
        "stage_cache": stats["workspace"]["stage_cache"],
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "server-throughput.json").write_text(json.dumps(payload, indent=2))

    print("\nServed requests (update_file + get_ir over TCP) vs fresh compile")
    print(f"  design:            {len(sources)} files")
    print(f"  cold one-shot:     {cold_time * 1000:8.1f} ms")
    print(f"  warm served:       {warm_time * 1000:8.1f} ms")
    print(f"  speedup:           {speedup:8.1f}x")
    print(f"  server requests:   {stats['server']['requests']}")
    assert cold_result.project is not None

    # Acceptance criterion: a warm served request beats a cold one-shot
    # compile by >= 3x even with the transport on the measured path.
    assert speedup >= 3.0, f"served requests only {speedup:.1f}x faster than one-shot"
