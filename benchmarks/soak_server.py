#!/usr/bin/env python
"""Soak a real multi-worker ``tydi-serve`` daemon and prove the pool's ops story.

The CI replacement for the old single-request server smoke job.  It:

1. spawns ``tydi-serve serve --workers N`` as a **subprocess** (the real
   CLI, the real fork path, a real TCP port),
2. drives it with ``--clients`` concurrent client threads for
   ``--duration`` seconds of interleaved load -- TPC-H query designs
   re-opened and recompiled, synthetic designs under continuous
   fuzzed edits (``update_file`` + ``get_ir`` round trips, with
   ``get_diagnostics`` / ``get_outputs`` mixed in), plus a simulable
   pipeline per client driven through ``simulate_design`` under fuzzed
   plans and occasional edits (the ``sim:`` tier under concurrency),
3. runs an IR round-trip smoke against the still-warm daemon: a design's
   emitted Tydi-IR document is re-opened via ``open_ir_design`` and both
   designs must produce byte-identical outputs over the wire,
4. then runs the same load against a ``--baseline-workers`` daemon and
   compares aggregate warm request throughput,
5. then (unless ``--no-remote``) runs a third phase against a daemon
   wired to a real ``tydi-cachesvc`` subprocess via ``--remote-cache``,
   and **kills the cache server halfway through the load** -- proving the
   remote L2 tier degrades to local-only without a single failed request,
6. asserts the ops invariants: **zero worker restarts** under healthy
   load, **no protocol-level failures** (compile errors from fuzzed edits
   are expected and counted separately) *including through the mid-soak
   cache kill*, the **IR round trip holding in every phase**, a **clean
   drain** on shutdown (``drained: true`` and exit code 0), and -- with
   ``--assert-floor`` -- the multi-worker daemon serving >= ``--floor`` x
   the baseline's requests/s,
7. writes one JSON artifact (``--output``) that CI uploads.

``--assert-floor`` is passed only in CI (4-vCPU runners); locally on small
machines the soak still proves correctness and the clean drain, and the
throughput ratio is recorded without being asserted.

Usage::

    PYTHONPATH=src python benchmarks/soak_server.py \\
        --workers 4 --clients 6 --duration 20 --assert-floor
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import re
import subprocess
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import TydiServerError  # noqa: E402
from repro.server import CompileClient, RemoteCompileError  # noqa: E402
from repro.testing import build_random_design, mutate_design  # noqa: E402

_LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")


def _spawn_announced(argv: list[str]) -> tuple[subprocess.Popen, str, int]:
    """Spawn a subprocess and parse its ``listening on host:port`` line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 60
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise RuntimeError(
        f"{argv[2]}: subprocess did not announce a port (exit={proc.poll()})"
    )


class Daemon:
    """One ``tydi-serve`` subprocess bound to an ephemeral port."""

    def __init__(
        self,
        workers: int,
        *,
        remote_cache: str | None = None,
        profile_stages: bool = False,
    ) -> None:
        argv = [
            sys.executable, "-m", "repro.server.cli", "serve",
            "--port", "0", "--workers", str(workers),
        ]
        if remote_cache:
            argv += ["--remote-cache", remote_cache]
        if profile_stages:
            argv += ["--profile-stages"]
        self.proc, self.host, self.port = _spawn_announced(argv)

    def shutdown(self) -> tuple[dict, int]:
        """Request a drain-shutdown; returns (reply, exit_code)."""
        with CompileClient(self.host, self.port, connect_retry_for=5) as client:
            reply = client.shutdown()
        exit_code = self.proc.wait(timeout=60)
        return reply, exit_code

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


class CacheDaemon:
    """One ``tydi-cachesvc`` subprocess bound to an ephemeral port.

    The remote-phase victim: the soak SIGKILLs it halfway through the
    load to prove every worker degrades to local-only caching instead of
    failing requests.
    """

    def __init__(self) -> None:
        self.proc, self.host, self.port = _spawn_announced(
            [sys.executable, "-m", "repro.server.cachesvc", "--port", "0"]
        )

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def ir_roundtrip_smoke(host: str, port: int) -> dict:
    """One IR round trip through the live daemon.

    Opens a language design, re-opens its emitted Tydi-IR document via
    ``open_ir_design``, and requires the outputs of both designs to be
    byte-identical -- the interchange correctness spine
    ``emit(ingest(emit(P))) == emit(P)``, exercised over a real TCP
    connection against the pool that just survived the soak load.
    """
    sources = build_random_design(random.Random(99))
    with CompileClient(host, port, connect_retry_for=10) as client:
        client.open_design("smoke_lang", files={f: t for t, f in sources})
        document = next(iter(client.get_outputs("smoke_lang", "tydi-ir").values()))
        client.open_ir_design("smoke_ir", document)
        identical = all(
            client.get_outputs("smoke_lang", target)
            == client.get_outputs("smoke_ir", target)
            for target in ("vhdl", "tydi-ir")
        )
    return {"ok": identical, "document_bytes": len(document)}


def tpch_jobs() -> list:
    from repro.queries import QUERIES

    return [QUERIES[name].compile_job() for name in sorted(QUERIES)]


def sim_pipeline(constant: int) -> str:
    """A simulable add-constant/accumulate pipeline (stdlib primitives)."""
    return (
        "type num = Stream(Bit(32), d=1);\n"
        "streamlet top_s { values: num in, total: num out, }\n"
        "impl top_i of top_s {\n"
        f"    instance k(const_int_generator_i<type num, {constant}>),\n"
        "    instance add(adder_i<type num, type num>),\n"
        "    instance acc(sum_i<type num, type num>),\n"
        "    values => add.lhs,\n"
        "    k.output => add.rhs,\n"
        "    add.output => acc.input,\n"
        "    acc.output => total,\n"
        "}\n"
        "top top_i;\n"
    )


class ClientStats:
    __slots__ = ("requests", "compile_errors", "failures", "simulations")

    def __init__(self) -> None:
        self.requests = 0
        self.compile_errors = 0
        self.failures: list[str] = []
        self.simulations = 0


def run_load(
    host: str, port: int, *, clients: int, duration: float, seed: int
) -> dict:
    """Drive the soak workload; returns aggregate counters."""
    jobs = tpch_jobs()
    stop = threading.Event()
    stats = [ClientStats() for _ in range(clients)]

    def one_client(index: int) -> None:
        rng = random.Random(seed * 1000 + index)
        record = stats[index]
        job = jobs[index % len(jobs)]
        tpch_name = f"soak_tpch_{index}"
        fuzz_name = f"soak_fuzz_{index}"
        sim_name = f"soak_sim_{index}"
        sim_constant = 10 + index
        tpch_files = {filename: text for text, filename in job.sources}
        fuzz_sources = build_random_design(rng)
        # A small pool of plans per client: repeats exercise the sim: cache
        # tier, fresh ones exercise the simulator, all under concurrency.
        sim_plans = [
            {
                "stimuli": {"values": [rng.randint(0, 99)
                                       for _ in range(rng.randint(1, 8))]},
                "channel_capacity": rng.choice([1, 2, 4]),
            }
            for _ in range(3)
        ]
        try:
            with CompileClient(host, port, connect_retry_for=10) as client:
                def call(method, *args, **kwargs):
                    record.requests += 1
                    try:
                        return getattr(client, method)(*args, **kwargs)
                    except RemoteCompileError:
                        record.compile_errors += 1
                        return None

                call("open_design", fuzz_name,
                     files={f: t for t, f in fuzz_sources})
                call("open_design", sim_name,
                     files={"sim.td": sim_pipeline(sim_constant)})
                while not stop.is_set():
                    roll = rng.random()
                    if roll < 0.15:
                        # A TPC-H compile: open (replace) + full query.
                        call("open_design", tpch_name, files=tpch_files,
                             options={"top": job.top, "sugaring": job.sugaring})
                        call("get_ir", tpch_name)
                    elif roll < 0.30:
                        # A plan-driven simulation; sometimes edit the
                        # design first so the sim: tier sees invalidation
                        # races, not just warm repeats.
                        if rng.random() < 0.3:
                            sim_constant += 1
                            call("update_file", sim_name, "sim.td",
                                 sim_pipeline(sim_constant))
                        if call("simulate_design", sim_name,
                                rng.choice(sim_plans)) is not None:
                            record.simulations += 1
                    elif roll < 0.85:
                        # A fuzzed edit round trip on the synthetic design.
                        before = dict((f, t) for t, f in fuzz_sources)
                        fuzz_sources, _ = mutate_design(rng, fuzz_sources)
                        after = dict((f, t) for t, f in fuzz_sources)
                        for filename in set(before) | set(after):
                            if before.get(filename) != after.get(filename):
                                if filename not in after:
                                    call("remove_file", fuzz_name, filename)
                                else:
                                    call("update_file", fuzz_name, filename,
                                         after[filename])
                        call("get_ir", fuzz_name)
                    elif roll < 0.95:
                        call("get_diagnostics", fuzz_name)
                    else:
                        call("get_outputs", fuzz_name, "ir")
        except (TydiServerError, OSError) as exc:
            record.failures.append(f"client {index}: {exc}")

    threads = [threading.Thread(target=one_client, args=(i,)) for i in range(clients)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.monotonic() - start

    total_requests = sum(record.requests for record in stats)
    return {
        "clients": clients,
        "duration_s": round(elapsed, 2),
        "requests": total_requests,
        "requests_per_s": round(total_requests / elapsed, 2) if elapsed else 0.0,
        "compile_errors": sum(record.compile_errors for record in stats),
        "simulate_requests": sum(record.simulations for record in stats),
        "failures": [msg for record in stats for msg in record.failures],
    }


def soak(
    workers: int,
    *,
    clients: int,
    duration: float,
    seed: int,
    remote_cache: str | None = None,
    profile_stages: bool = False,
) -> dict:
    """One full soak phase: spawn daemon, load it, collect stats, drain."""
    daemon = Daemon(workers, remote_cache=remote_cache,
                    profile_stages=profile_stages)
    try:
        load = run_load(daemon.host, daemon.port, clients=clients,
                        duration=duration, seed=seed)
        roundtrip = ir_roundtrip_smoke(daemon.host, daemon.port)
        with CompileClient(daemon.host, daemon.port, connect_retry_for=5) as client:
            server_stats = client.stats()
        reply, exit_code = daemon.shutdown()
    except BaseException:
        daemon.kill()
        raise
    pool_stats = server_stats.get("pool") or {}
    phase = {
        "workers": workers,
        **load,
        "server_requests": server_stats["server"]["requests"],
        "ir_roundtrip": roundtrip,
        "worker_restarts": pool_stats.get("restarts", 0),
        "shutdown": reply,
        "exit_code": exit_code,
    }
    if remote_cache is not None:
        phase["remote_cache"] = _aggregate_remote_counters(server_stats)
    if profile_stages:
        phase["profiling"] = (server_stats.get("workspace") or {}).get("profiling")
    return phase


def _aggregate_remote_counters(server_stats: dict) -> dict[str, int]:
    """Sum the remote-tier client counters across every pool worker."""
    totals: dict[str, int] = {}
    pool_stats = server_stats.get("pool") or {}
    workspaces = [
        entry.get("workspace")
        for entry in pool_stats.get("per_worker", ())
    ] or [server_stats.get("workspace")]
    for workspace in workspaces:
        remote = ((workspace or {}).get("cache") or {}).get("remote") or {}
        for key, value in remote.items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return totals


def remote_soak(workers: int, *, clients: int, duration: float, seed: int) -> dict:
    """The remote-cache phase: soak through a live L2, kill it mid-run.

    Spawns a real ``tydi-cachesvc`` subprocess, points the daemon at it,
    and SIGKILLs the cache server at half the load duration.  The
    invariants checked by ``main`` are the same as for the other phases --
    in particular **zero protocol failures and zero worker restarts**:
    losing the remote tier mid-compile must degrade to local-only caching,
    never fail a request.
    """
    cache = CacheDaemon()
    kill_after = duration / 2
    killer = threading.Timer(kill_after, cache.kill)
    try:
        killer.start()
        phase = soak(workers, clients=clients, duration=duration, seed=seed,
                     remote_cache=cache.endpoint)
    finally:
        killer.cancel()
        cache.kill()
    phase["cache_endpoint"] = cache.endpoint
    phase["cache_killed_after_s"] = round(kill_after, 2)
    phase["cache_exit_code"] = cache.proc.poll()
    return phase


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--baseline-workers", type=int, default=1)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="seconds of load per phase (default: 20)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--floor", type=float, default=2.0,
                        help="required multi/baseline req/s ratio (default: 2.0)")
    parser.add_argument("--assert-floor", action="store_true",
                        help="fail when the throughput ratio is below --floor "
                        "(CI only; needs >= --workers CPUs to be meaningful)")
    parser.add_argument("--no-remote", action="store_true",
                        help="skip the remote-cache kill phase")
    parser.add_argument("--profile-stages", action="store_true",
                        help="run the daemons with per-stage profiling enabled "
                        "and assert stage timings surface in the stats reply")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("benchmark-artifacts/soak.json"))
    args = parser.parse_args(argv)

    print(f"soak: {args.workers} workers, {args.clients} clients, "
          f"{args.duration:.0f}s per phase", flush=True)
    multi = soak(args.workers, clients=args.clients, duration=args.duration,
                 seed=args.seed, profile_stages=args.profile_stages)
    print(f"soak: multi-worker phase: {multi['requests']} requests "
          f"({multi['requests_per_s']}/s), {multi['compile_errors']} compile "
          f"errors, {multi['simulate_requests']} simulations, "
          f"restarts={multi['worker_restarts']}", flush=True)
    baseline = soak(args.baseline_workers, clients=args.clients,
                    duration=args.duration, seed=args.seed)
    print(f"soak: baseline ({args.baseline_workers} worker): "
          f"{baseline['requests']} requests ({baseline['requests_per_s']}/s)",
          flush=True)
    remote = None
    if not args.no_remote:
        remote = remote_soak(args.workers, clients=args.clients,
                             duration=args.duration, seed=args.seed)
        counters = remote["remote_cache"]
        print(f"soak: remote-cache phase (L2 killed at "
              f"{remote['cache_killed_after_s']:.0f}s): {remote['requests']} "
              f"requests, {len(remote['failures'])} failures, "
              f"restarts={remote['worker_restarts']}, remote gets="
              f"{counters.get('gets', 0)} errors={counters.get('errors', 0)} "
              f"skips={counters.get('skips', 0)}", flush=True)

    ratio = (multi["requests_per_s"] / baseline["requests_per_s"]
             if baseline["requests_per_s"] else float("inf"))
    payload = {
        "cpu_count": os.cpu_count(),
        "multi": multi,
        "baseline": baseline,
        "remote": remote,
        "throughput_ratio": round(ratio, 2),
        "floor": args.floor,
        "floor_asserted": bool(args.assert_floor),
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2))
    print(f"soak: throughput ratio {ratio:.2f}x "
          f"(artifact: {args.output})", flush=True)

    problems = []
    phases = [(multi, f"{multi['workers']}-worker phase"),
              (baseline, f"{baseline['workers']}-worker phase")]
    if remote is not None:
        phases.append((remote, "remote-cache phase"))
        counters = remote["remote_cache"]
        if not counters.get("gets") and not counters.get("puts"):
            problems.append(
                "remote-cache phase: workers recorded no remote traffic at "
                "all (endpoint never wired through?)"
            )
        if remote["cache_exit_code"] is None:
            problems.append("remote-cache phase: cache server outlived its kill")
    for phase, tag in phases:
        if phase["failures"]:
            problems.append(f"{tag}: protocol failures: {phase['failures'][:3]}")
        if phase["worker_restarts"]:
            problems.append(f"{tag}: {phase['worker_restarts']} worker restart(s) "
                            f"under healthy load")
        if not (phase["shutdown"].get("stopping") and phase["shutdown"].get("drained")):
            problems.append(f"{tag}: unclean drain: {phase['shutdown']}")
        if phase["exit_code"] != 0:
            problems.append(f"{tag}: daemon exit code {phase['exit_code']}")
        if phase["requests"] < args.clients * 2:
            problems.append(f"{tag}: implausibly few requests ({phase['requests']})")
        if not phase.get("simulate_requests"):
            problems.append(f"{tag}: no simulate_design traffic")
        if not phase.get("ir_roundtrip", {}).get("ok"):
            problems.append(
                f"{tag}: IR round-trip smoke failed "
                f"(open_ir_design outputs diverged from the source design)"
            )
    if args.assert_floor and ratio < args.floor:
        problems.append(
            f"throughput ratio {ratio:.2f}x below the {args.floor}x floor"
        )
    if args.profile_stages:
        # The stats reply of a --profile-stages daemon must carry summed
        # per-stage timings from the pool workers (parse ran thousands of
        # times under this load; a zero count means the wiring is broken).
        profiling = multi.get("profiling") or {}
        parse_count = ((profiling.get("stages") or {}).get("parse") or {}).get("count", 0)
        if not profiling.get("enabled") or parse_count <= 0:
            problems.append(
                f"--profile-stages: no parse stage timings in the multi-worker "
                f"stats reply (profiling block: {profiling!r:.200})"
            )
        else:
            print(f"soak: profiling: parse ran {parse_count} times "
                  f"({profiling['stages']['parse']['wall_ms']:.0f} ms wall)",
                  flush=True)

    for problem in problems:
        print(f"soak: FAIL: {problem}", flush=True)
    if not problems:
        print("soak: all invariants held", flush=True)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
