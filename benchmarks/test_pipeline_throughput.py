"""Benchmark: batch-pipeline throughput over the TPC-H compile suite.

Not a paper artefact but an infrastructure benchmark: it drives the
content-addressed cache and the parallel batch driver
(:mod:`repro.pipeline`) over the full TPC-H query set (every design of
Table IV plus a no-DRC variant of each, 12 compile jobs in total) and
asserts the two properties the pipeline promises:

* **warm >= 5x cold** -- recompiling the suite against a warm cache is at
  least five times faster than the cold batch, and
* **parallel == serial** -- the concurrently-compiled batch output is
  byte-identical (textual Tydi-IR) to the serial reference.
"""

import time

import pytest
from conftest import run_once

from repro.lang.compile import compile_sources
from repro.pipeline import BatchCompiler, CompilationCache, StageCache
from repro.queries import ALL_QUERIES
from repro.testing import build_chain_design

# Drives the deprecated BatchCompiler facade on purpose: the shim's
# throughput must match the engine's.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def suite_jobs():
    """12+ compile jobs: every Table-IV design plus a no-DRC variant."""
    jobs = [query.compile_job() for query in ALL_QUERIES]
    jobs += [
        job.with_options(name=f"{job.name}__nodrc", run_drc=False, strict_drc=False)
        for job in jobs
    ]
    return jobs


def test_pipeline_throughput_cold_vs_warm(benchmark):
    jobs = suite_jobs()
    assert len(jobs) >= 10
    cache = CompilationCache(max_entries=64)
    compiler = BatchCompiler(cache=cache, executor="thread", max_workers=4)

    def cold_batch():
        cache.clear()
        cache.stats.reset()
        return compiler.compile_batch(jobs)

    cold = run_once(benchmark, cold_batch)
    assert cold.ok, [f.error for f in cold.failures]
    assert all(not entry.from_cache for entry in cold.results)

    warm_start = time.perf_counter()
    warm = compiler.compile_batch(jobs)
    warm_time = time.perf_counter() - warm_start
    assert warm.ok
    assert all(entry.from_cache for entry in warm.results)
    assert cache.stats.hits == len(jobs)

    speedup = cold.wall_time / warm_time if warm_time > 0 else float("inf")
    print("\nBatch compile throughput over the TPC-H suite")
    print(f"  jobs:            {len(jobs)} (executor={cold.executor}, workers={cold.workers})")
    print(f"  cold batch:      {cold.wall_time * 1000:8.1f} ms  ({len(jobs) / cold.wall_time:7.1f} designs/s)")
    print(f"  warm batch:      {warm_time * 1000:8.1f} ms  ({len(jobs) / warm_time:7.1f} designs/s)")
    print(f"  warm speedup:    {speedup:8.1f}x")
    print(f"  cache:           {cache.stats.as_dict()}")

    # Acceptance criterion: warm-cache recompilation is >= 5x faster.
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x faster than cold"

    # Warm results are the very artefacts the cold batch stored.
    cold_ir = {entry.name: entry.result.ir_text() for entry in cold.results}
    for entry in warm.results:
        assert entry.result.ir_text() == cold_ir[entry.name]


def _edit_workload(num_files: int = 16, decls_per_file: int = 100):
    """An N-file design heavy enough that parsing dominates the frontend.

    Each chain file is padded with constant declarations (cheap to evaluate,
    expensive to lex/parse) -- the realistic shape of a large design where
    most files hold type/constant libraries that rarely change.
    """
    sources = build_chain_design(num_files - 1)
    padded = []
    for file_index, (text, name) in enumerate(sources):
        pad = "\n".join(
            f"const pad_{file_index}_{i} = {i} * 3 + 1;" for i in range(decls_per_file)
        )
        padded.append((text + pad + "\n", name))
    return padded


def test_stage_cache_one_file_edit_speedup(benchmark):
    """Acceptance criterion: warm stage cache makes a one-file-edit recompile
    of an N-file design >= 3x faster than a cold monolithic compile."""
    sources = _edit_workload()
    assert len(sources) == 16

    # Cold monolithic reference: the full parse -> evaluate -> sugar -> DRC
    # pipeline with no cache at all (best of 3, timing noise guard).
    def cold_monolithic():
        return compile_sources(sources, include_stdlib=False)

    cold_result = run_once(benchmark, cold_monolithic)
    cold_times = []
    for _ in range(3):
        start = time.perf_counter()
        compile_sources(sources, include_stdlib=False)
        cold_times.append(time.perf_counter() - start)
    cold_time = min(cold_times)

    # Warm the stage cache, then measure recompiles after distinct one-file
    # edits: each re-parses exactly one file and re-runs evaluate onward.
    stage_cache = StageCache()
    options = {"include_stdlib": False}
    stage_cache.compile(sources, options)
    warm_times = []
    edited = sources
    for round_index in range(3):
        edited = list(sources)
        text, name = edited[round_index]
        edited[round_index] = (text + f"const edit_{round_index} = {round_index};\n", name)
        start = time.perf_counter()
        staged = stage_cache.compile(edited, options)
        warm_times.append(time.perf_counter() - start)
    warm_time = min(warm_times)

    # The staged recompile is still byte-identical to a cold monolithic run.
    reference = compile_sources(edited, include_stdlib=False)
    assert staged.ir_text() == reference.ir_text()
    assert [str(s) for s in staged.stages] == [str(s) for s in reference.stages]
    # Exactly one file re-parsed per edit round.
    assert stage_cache.stats.parse_misses == len(sources) + 3
    assert stage_cache.stats.parse_hits == 3 * (len(sources) - 1)

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    print("\nOne-file-edit recompile with a warm stage cache (16-file design)")
    print(f"  cold monolithic: {cold_time * 1000:8.1f} ms")
    print(f"  staged (1 edit): {warm_time * 1000:8.1f} ms")
    print(f"  speedup:         {speedup:8.1f}x")
    print(f"  stage cache:     {stage_cache.stats.as_dict()}")
    assert cold_result.project is not None

    # Acceptance criterion: >= 3x faster than the cold monolithic compile.
    assert speedup >= 3.0, f"stage cache only {speedup:.1f}x faster than cold monolithic"


def test_pipeline_parallel_matches_serial(benchmark):
    jobs = suite_jobs()

    def parallel_batch():
        return BatchCompiler(executor="thread", max_workers=4).compile_batch(jobs)

    parallel = run_once(benchmark, parallel_batch)
    assert parallel.ok

    serial_start = time.perf_counter()
    serial = BatchCompiler(executor="serial").compile_batch(jobs)
    serial_time = time.perf_counter() - serial_start
    assert serial.ok

    print("\nSerial vs parallel batch compilation")
    print(f"  serial:   {serial_time * 1000:8.1f} ms")
    print(f"  parallel: {parallel.wall_time * 1000:8.1f} ms  (workers={parallel.workers})")

    # Acceptance criterion: parallel output is byte-identical to serial.
    for a, b in zip(serial.results, parallel.results):
        assert a.name == b.name
        assert a.result.ir_text() == b.result.ir_text()
