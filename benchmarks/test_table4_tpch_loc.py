"""Benchmark / regeneration of Table IV: LoC for translating TPC-H queries.

This is the paper's headline evaluation.  The benchmark compiles every query
design (Q1 with and without sugaring, Q3, Q5, Q6, Q19), generates its VHDL,
counts the lines of each part and prints the same columns the paper reports:
raw SQL, query logic (LoCq), total Tydi-lang (LoCa = LoCq + LoCf + LoCs),
generated VHDL, Rq = VHDL/LoCq and Ra = VHDL/LoCa.

Absolute LoC differs from the paper (our VHDL backend and query designs are
smaller than the authors'), but the *shape* must hold, which the assertions
check:

* VHDL is more than an order of magnitude larger than the query logic for
  every query (Rq >> 1, paper: 19-42x),
* the total-Tydi ratio Ra is several times smaller than Rq but still > 1
  (paper: 10-19x),
* sugaring reduces Q1's query-logic LoC (paper: 402 -> 284) without changing
  the generated hardware,
* Q19 (three structurally similar OR clauses) produces the largest VHDL, and
  Q6 (the simplest query) has the highest reuse per SQL line.
"""

import pytest
from conftest import run_once

from repro.report.loc import PAPER_TABLE4, table4_rows
from repro.report.tables import table4


def test_table4_tpch_loc(benchmark, compiled_queries):
    rows = run_once(benchmark, table4_rows)
    print("\n" + table4())

    by_title = {row.query: row for row in rows}
    assert set(by_title) == set(PAPER_TABLE4)

    for title, row in by_title.items():
        paper = PAPER_TABLE4[title]
        # Shape check 1: generated VHDL dwarfs the hand-written query logic.
        assert row.ratio_query > 10, f"{title}: Rq collapsed ({row.ratio_query:.1f})"
        # Shape check 2: amortising the Fletcher + stdlib parts still wins.
        assert row.ratio_total > 3, f"{title}: Ra collapsed ({row.ratio_total:.1f})"
        assert row.ratio_total < row.ratio_query
        # Shape check 3: within a factor ~3 of the paper's reported ratios.
        assert 0.3 < row.ratio_query / paper["rq"] < 3.0
        # Raw SQL is always far smaller than the hardware description.
        assert row.raw_sql < row.query_logic

    # Sugaring saves query-logic LoC for Q1 but describes the same hardware.
    sugared = by_title["TPC-H 1"]
    manual = by_title["TPC-H 1 (without sugaring)"]
    assert sugared.query_logic < manual.query_logic
    assert sugared.vhdl == pytest.approx(manual.vhdl, rel=0.05)
    assert sugared.ratio_query > manual.ratio_query  # same ordering as the paper

    # Q19 is the largest generated design (it is in the paper, too).
    assert by_title["TPC-H 19"].vhdl == max(row.vhdl for row in rows)
