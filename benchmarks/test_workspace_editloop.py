"""Benchmark: the workspace edit loop (warm ``update_file`` + re-query).

Not a paper artefact but the acceptance benchmark of the session API
(:mod:`repro.workspace`): it models the editor/service loop the workspace
exists for -- hold one design open, edit one file, re-ask for the IR --
and asserts the property the session promises:

* **warm >= 3x cold** -- an ``update_file`` of one file followed by a
  ``result`` re-query is at least three times faster than a fresh one-shot
  ``compile_sources`` of the same design, because the session's stage cache
  re-parses only the edited file, and
* **warm == cold** -- the re-queried artefacts are byte-identical to the
  fresh compile (spot-checked here; the full property lives in
  ``tests/test_workspace_properties.py``).

The run also writes ``benchmark-artifacts/workspace-editloop.json`` (cold /
warm timings, speedup, stage-cache counters) which CI uploads as a build
artifact, so the edit-loop latency is tracked per commit.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.lang.compile import compile_sources
from repro.testing import build_chain_design
from repro.workspace import Workspace

#: Where the JSON artifact lands (CI uploads this directory).
ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))


def _edit_workload(num_files: int = 16, decls_per_file: int = 100):
    """An N-file design heavy enough that parsing dominates the frontend
    (same shape as the stage-cache benchmark: constant-library padding)."""
    sources = build_chain_design(num_files - 1)
    padded = []
    for file_index, (text, name) in enumerate(sources):
        pad = "\n".join(
            f"const pad_{file_index}_{i} = {i} * 3 + 1;" for i in range(decls_per_file)
        )
        padded.append((text + pad + "\n", name))
    return padded


def test_workspace_edit_loop_speedup(benchmark):
    sources = _edit_workload()
    options = {"include_stdlib": False}

    # Cold reference: a fresh one-shot compile of the same design, no cache
    # of any kind (best of 3, timing noise guard).
    def cold_compile():
        return compile_sources(sources, cache=None, **options)

    cold_result = run_once(benchmark, cold_compile)
    cold_times = []
    for _ in range(3):
        start = time.perf_counter()
        compile_sources(sources, cache=None, **options)
        cold_times.append(time.perf_counter() - start)
    cold_time = min(cold_times)

    # The session under test: one workspace holding the design, queried
    # once to warm the memo and the stage cache.
    workspace = Workspace(options=options)
    workspace.add_design("chain", sources)
    workspace.result("chain")
    stage_stats = workspace.cache.stages.stats
    stage_stats.reset()

    # The edit loop: distinct one-file edits (accumulating in the session,
    # as a real editing history does), each followed by a re-query.
    warm_times = []
    final_sources = list(sources)
    for round_index in range(3):
        text, filename = sources[round_index]
        edited_text = text + f"const edit_{round_index} = {round_index};\n"
        final_sources[round_index] = (edited_text, filename)
        start = time.perf_counter()
        workspace.update_file("chain", filename, edited_text)
        warm_result = workspace.result("chain")
        warm_times.append(time.perf_counter() - start)
    warm_time = min(warm_times)

    # The session's answer is still byte-identical to a fresh compile of
    # the fully-edited state.
    reference = compile_sources(final_sources, cache=None, **options)
    assert warm_result.ir_text() == reference.ir_text()
    assert [str(s) for s in warm_result.stages] == [str(s) for s in reference.stages]
    # Each round re-parsed exactly the edited file.
    assert stage_stats.parse_misses == 3
    assert stage_stats.parse_hits == 3 * (len(sources) - 1)

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    payload = {
        "design_files": len(sources),
        "cold_oneshot_ms": round(cold_time * 1000, 3),
        "warm_editloop_ms": round(warm_time * 1000, 3),
        "speedup": round(speedup, 2),
        "stage_cache": stage_stats.as_dict(),
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "workspace-editloop.json").write_text(json.dumps(payload, indent=2))

    print("\nWorkspace edit loop (update_file + re-query) vs fresh compile")
    print(f"  design:            {len(sources)} files")
    print(f"  cold one-shot:     {cold_time * 1000:8.1f} ms")
    print(f"  warm edit+query:   {warm_time * 1000:8.1f} ms")
    print(f"  speedup:           {speedup:8.1f}x")
    print(f"  stage cache:       {stage_stats.as_dict()}")
    assert cold_result.project is not None

    # Acceptance criterion: warm update_file + re-query >= 3x faster than a
    # cold one-shot compile of the same design.
    assert speedup >= 3.0, f"edit loop only {speedup:.1f}x faster than one-shot"
