#!/usr/bin/env python
"""Gate benchmark artifacts against committed baselines.

CI runs the benchmark suite (which writes ``benchmark-artifacts/*.json``),
then runs this script to compare the headline metric of each artifact
against the committed floor in ``benchmarks/baselines/``.  A metric that
regresses by more than ``--tolerance`` (default 30%) fails the job, so a
change that quietly destroys the warm/cold ratio or the pool speedup
cannot merge green.

Rules:

* every baseline file must have a current artifact -- a benchmark that
  silently stopped producing its artifact is itself a regression (fail);
* a current artifact without a baseline is reported as a warning (new
  benchmarks land first, their baseline is committed once CI numbers
  exist);
* all gated metrics are higher-is-better ratios (speedups), so the check
  is ``current >= baseline * (1 - tolerance)``.

Usage::

    python benchmarks/compare_artifacts.py \\
        [--artifacts benchmark-artifacts] [--baselines benchmarks/baselines] \\
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: artifact filename -> the higher-is-better metric keys gated in it.
GATED_METRICS: dict[str, tuple[str, ...]] = {
    "server-throughput.json": ("speedup",),
    "workspace-editloop.json": ("speedup",),
    "pool-throughput.json": ("speedup",),
    "remote-cache.json": ("speedup",),
    "cold-compile.json": ("speedup",),
    "sim-service.json": ("speedup",),
    "emit-parallel.json": ("speedup",),
}


def load_json(path: pathlib.Path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL  {path}: unreadable ({exc})")
        return None


def compare(artifacts_dir: pathlib.Path, baselines_dir: pathlib.Path, tolerance: float) -> int:
    failures = 0
    warnings = 0
    checked = 0

    baseline_files = sorted(baselines_dir.glob("*.json")) if baselines_dir.is_dir() else []
    if not baseline_files:
        print(f"FAIL  no baselines found under {baselines_dir}")
        return 1

    for baseline_path in baseline_files:
        name = baseline_path.name
        metrics = GATED_METRICS.get(name)
        if metrics is None:
            print(f"warn  {name}: baseline present but no gated metrics registered")
            warnings += 1
            continue
        baseline = load_json(baseline_path)
        current_path = artifacts_dir / name
        if not current_path.exists():
            print(
                f"FAIL  {name}: no current artifact in {artifacts_dir} "
                f"(did its benchmark stop running?)"
            )
            failures += 1
            continue
        current = load_json(current_path)
        if baseline is None or current is None:
            failures += 1
            continue
        # A parallelism benchmark recorded on a machine with fewer CPUs
        # than workers cannot meet a multi-core floor; report and skip
        # (CI runners always have enough, so CI stays strict).
        cpu_count = current.get("cpu_count")
        workers = current.get("workers")
        if (
            isinstance(cpu_count, int)
            and isinstance(workers, int)
            and cpu_count < workers
        ):
            print(
                f"warn  {name}: recorded on {cpu_count} CPU(s) for "
                f"{workers} workers; parallel floor not applicable, skipping"
            )
            warnings += 1
            continue
        for key in metrics:
            base_value = baseline.get(key)
            cur_value = current.get(key)
            if not isinstance(base_value, (int, float)):
                print(f"FAIL  {name}:{key}: baseline value missing or non-numeric")
                failures += 1
                continue
            if not isinstance(cur_value, (int, float)):
                print(f"FAIL  {name}:{key}: current value missing or non-numeric")
                failures += 1
                continue
            floor = base_value * (1.0 - tolerance)
            checked += 1
            if cur_value < floor:
                print(
                    f"FAIL  {name}:{key}: {cur_value:g} regressed below "
                    f"{floor:g} (baseline {base_value:g}, tolerance {tolerance:.0%})"
                )
                failures += 1
            else:
                print(
                    f"ok    {name}:{key}: {cur_value:g} "
                    f"(floor {floor:g}, baseline {base_value:g})"
                )

    for current_path in sorted(artifacts_dir.glob("*.json")) if artifacts_dir.is_dir() else []:
        if not (baselines_dir / current_path.name).exists():
            print(f"warn  {current_path.name}: artifact has no committed baseline yet")
            warnings += 1

    print(
        f"\n{checked} metric(s) checked, {failures} failure(s), {warnings} warning(s)"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", default="benchmark-artifacts", type=pathlib.Path,
        help="directory the benchmark run wrote (default: benchmark-artifacts)",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines", type=pathlib.Path,
        help="directory of committed baseline artifacts (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--tolerance", default=0.30, type=float,
        help="allowed relative regression before failing (default: 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    return compare(args.artifacts, args.baselines, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
