"""Benchmark: process-parallel backend emission vs serial (``emit_jobs``).

The acceptance benchmark of the interchange PR's ``--emit-jobs`` path
(:meth:`repro.pipeline.stages.StageCache.emit_backend`).  Backend units
are pure functions of (project, implementation, options), so cold unit
emission is embarrassingly parallel; ``StageCache(emit_jobs=N)`` ships
the pickled (project, backend) pair to a process pool once and fans the
cold implementations out as bare names.

The workload is the canonical 16-file fleet design (31 implementations,
15 of them 160-instance chains) emitted through the two HDL backends --
VHDL emission dominates the wall time, which is exactly the shape the
flag exists for.

Asserted (on machines with >= 4 CPUs, i.e. the CI runners):

* **parallel cold emission >= 1.5x serial** for 4 emit jobs;
* **byte-identical outputs** from both modes (the speed must not come
  from emitting something else);
* the parallel run populates the unit cache exactly as serial misses
  would have (a warm re-emit is all hits and still byte-identical).

The run always writes ``benchmark-artifacts/emit-parallel.json`` (both
wall times, the speedup, unit counts), which CI uploads and
``benchmarks/compare_artifacts.py`` gates against the committed
baseline.  On smaller machines the numbers are still recorded; only the
ratio assertion is skipped (a 1-CPU box cannot show process
parallelism, and the artifact's ``cpu_count``/``workers`` fields tell
the gate to skip too).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import run_once
from corpus import fleet_workload

from repro.backends import get_backend
from repro.lang.compile import compile_sources
from repro.pipeline.stages import StageCache

ARTIFACT_DIR = pathlib.Path(os.environ.get("TYDI_BENCH_ARTIFACTS", "benchmark-artifacts"))

WORKERS = 4

#: Both HDL emitters: VHDL dominates the wall time; Verilog rides along
#: so the benchmark covers the same multi-target emit the CLI runs.
TARGETS = ("vhdl", "verilog")

#: The acceptance floor: 4 emit jobs must beat serial by this much on
#: the fleet workload.
TARGET_SPEEDUP = 1.5


def _emit_all(cache: StageCache, project) -> dict[str, dict[str, str]]:
    return {
        name: dict(cache.emit_backend(project, get_backend(name)))
        for name in TARGETS
    }


def test_parallel_emit_beats_serial(benchmark):
    project = compile_sources(fleet_workload()).project
    units = len(project.implementations)
    assert units > 20, "fleet workload shrank; benchmark is meaningless"

    # Mode A: serial cold emission through a fresh (memory-only) cache.
    serial_cache = StageCache()
    start = time.perf_counter()
    serial_files = _emit_all(serial_cache, project)
    serial_time = time.perf_counter() - start

    # Mode B: the same cold emission fanned out across a process pool.
    parallel_cache = StageCache(emit_jobs=WORKERS)

    def parallel_run():
        start = time.perf_counter()
        files = _emit_all(parallel_cache, project)
        return time.perf_counter() - start, files

    parallel_time, parallel_files = run_once(benchmark, parallel_run)

    # Differential: the speed must not come from emitting something else.
    assert parallel_files == serial_files

    # The pool populated the unit cache exactly as serial misses would
    # have: a warm re-emit is all hits and still byte-identical.
    assert parallel_cache.stats.backend_misses == units * len(TARGETS)
    assert _emit_all(parallel_cache, project) == serial_files
    assert parallel_cache.stats.backend_hits == units * len(TARGETS)

    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    payload = {
        "benchmark": "emit-parallel",
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "targets": list(TARGETS),
        "units": units,
        "serial_ms": round(serial_time * 1000, 3),
        "parallel_ms": round(parallel_time * 1000, 3),
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
    }
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / "emit-parallel.json").write_text(json.dumps(payload, indent=2))

    print(f"\nCold backend emission over the 16-file fleet ({units} units x "
          f"{len(TARGETS)} targets):")
    print(f"  serial:                 {serial_time * 1000:8.1f} ms")
    print(f"  emit_jobs={WORKERS}:            {parallel_time * 1000:8.1f} ms")
    print(f"  speedup:                {speedup:8.2f}x")

    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"only {os.cpu_count()} CPU(s): recorded the artifact, but process "
            f"parallelism cannot be asserted here (CI runners have >= {WORKERS})"
        )
    assert speedup >= TARGET_SPEEDUP, (
        f"parallel emission only {speedup:.2f}x over serial "
        f"(floor: {TARGET_SPEEDUP}x)"
    )
