"""Benchmark / regeneration of Figure 2: the Tydi-lang workflow in big data.

The benchmark executes every box of the figure for TPC-H Q6: Arrow schema ->
Fletcher-generated readers -> (automatic) SQL translation -> Tydi-lang
compilation with the standard library -> VHDL, and finally validates the
resulting accelerator functionally against the numpy reference.
"""

import pytest
from conftest import run_once

from repro.arrow.fletcher import fletcher_interface_source, reader_behaviors
from repro.arrow.tpch import LINEITEM_SCHEMA, golden_q6
from repro.lang import compile_sources
from repro.queries.q6 import SQL as Q6_SQL
from repro.report.figures import figure2
from repro.sim import Simulator
from repro.sql import translate_select
from repro.vhdl.backend import VhdlBackend


def test_figure2_bigdata_flow(benchmark, tpch_tables):
    def flow():
        # Apache Arrow data schema -> Fletcher -> memory-access components.
        fletcher_source = fletcher_interface_source([LINEITEM_SCHEMA])
        # SQL application -> Tydi source code (the future-work trans-compiler).
        translation = translate_select(Q6_SQL, LINEITEM_SCHEMA, name="figure2_q6")
        # Tydi-lang compiler (+ standard library) -> VHDL component.
        result = compile_sources(
            [(fletcher_source, "fletcher.td"), (translation.source, "query.td")],
            top=translation.top,
            project_name="figure2_q6",
        )
        vhdl_loc = VhdlBackend(result.project).total_loc()
        # FPGA application (simulated): stream the dataset through the design.
        simulator = Simulator(
            result.project,
            behaviors=reader_behaviors([LINEITEM_SCHEMA], {"lineitem": tpch_tables["lineitem"]}),
            channel_capacity=4,
        )
        trace = simulator.run()
        measured = trace.output_values(translation.output_ports[0])[-1]
        return translation, result, vhdl_loc, measured

    translation, result, vhdl_loc, measured = run_once(benchmark, flow)
    reference = golden_q6(tpch_tables)

    print("\n" + figure2())
    print("\nflow artefacts for TPC-H Q6:")
    print(f"  generated Tydi-lang query logic: {translation.loc()} LoC")
    print(f"  compiled design:                 {result.project.statistics()}")
    print(f"  generated VHDL:                  {vhdl_loc} LoC")
    print(f"  simulated revenue:               {measured:,.2f}")
    print(f"  numpy reference:                 {reference:,.2f}")

    assert result.drc.passed()
    assert vhdl_loc > 500
    assert measured == pytest.approx(reference, rel=1e-9)
