"""Benchmark / regeneration of Figure 3: the compiler-frontend workflow.

The benchmark compiles TPC-H Q19 (the largest evaluated design) and prints
the live stage log -- parser, evaluation/expansion, sugaring, DRC, IR -- with
the size of the design after each stage, which is the information Figure 3's
"code structure #1..#4" boxes convey.
"""

from conftest import run_once

from repro.queries import QUERIES
from repro.report.figures import figure3


def test_figure3_frontend_stages(benchmark):
    query = QUERIES["q19"]

    def compile_q19():
        return query.compile(force=True)

    result = run_once(benchmark, compile_q19)
    print("\n" + figure3(result))

    # The frontend ran all five stages, in the paper's order.
    assert result.stage_names() == ["parse", "evaluate", "sugaring", "drc", "ir"]

    # Evaluation expanded the generative for-loops: three clause AND gates and
    # twelve container comparators exist in the flat design.
    top = result.project.implementation("q19_i")
    assert sum(1 for i in top.instances if i.name.startswith("clause_and")) == 3
    assert sum(1 for i in top.instances if i.name.startswith("cmp_container")) == 12

    # Sugaring inserted the fan-out hardware (every predicate column of Q19 is
    # consumed by several comparators) and the DRC passed.  Q19 uses every
    # column of its join-aligned reader, so no voiders are needed here.
    assert result.sugaring.duplicators_inserted >= 5
    assert result.drc.passed()

    # The textual IR is a faithful, non-trivial artefact of the last stage.
    assert "impl q19_i" in result.ir_text()
