"""Benchmark / regeneration of Table II: variable-based features.

Besides printing the table, this benchmark *exercises* each feature (for, if,
assert) through the compiler so the table cannot drift from the behaviour.
"""

import pytest
from conftest import run_once

from repro.errors import TydiAssertionError
from repro.lang.compile import compile_project
from repro.report.tables import table2


FEATURE_EXERCISE = """
type t = Stream(Bit(8), d=1);
const widths = [1, 2, 3, 4];
const enable_extra = false;
streamlet sink_s { input: t in, }
external impl sink_i<tag: int> of sink_s;
streamlet src_s<n: int> { output: t out [n], }
external impl src_i<n: int> of src_s<n>;
streamlet top_s { }
impl top_i of top_s {
    assert(len(widths) == 4),
    instance source(src_i<len(widths)>),
    for i in 0->len(widths) {
        instance drain(sink_i<widths[i]>),
        source.output[i] => drain.input,
    }
    if (enable_extra) {
        instance extra(src_i<1>),
    }
}
top top_i;
"""


def test_table2_features(benchmark):
    def regenerate():
        # Exercise for/if/assert through a real compilation, then render.
        result = compile_project(FEATURE_EXERCISE)
        return table2(), result

    text, result = run_once(benchmark, regenerate)
    print("\n" + text)
    for feature in ("for x in x_array", "if (x)", "assert(var)"):
        assert feature in text

    top = result.project.implementation("top_i")
    # `for` expanded four sink instances, `if (false)` expanded none.
    assert sum(1 for i in top.instances if i.name.startswith("drain")) == 4
    assert not any(i.name.startswith("extra") for i in top.instances)

    # `assert` really fails the compilation when violated.
    with pytest.raises(TydiAssertionError):
        compile_project(FEATURE_EXERCISE.replace("== 4", "== 5"))
