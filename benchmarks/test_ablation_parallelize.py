"""Ablation: throughput scaling of the ``parallelize`` template (Section IV-B).

The paper motivates the template with an 8-cycle adder that must sustain one
packet per cycle: wrapping it in ``parallelize_i<..., channel>`` with 8
channels restores full throughput.  This ablation sweeps the channel count
and measures, in the event-driven simulator, how many cycles the design needs
to process a fixed input stream -- the design-choice the template exists for.

Expected shape: total cycles drop roughly linearly with the channel count
until the channel count reaches the processing-unit latency (8), after which
adding more units does not help.
"""

from conftest import run_once

from repro.lang import compile_project
from repro.sim import Simulator
from repro.sim.behavior import PrimitiveBehavior
from repro.sim.packets import Packet

SOURCE_TEMPLATE = """
Group AdderInput {{ data0: Bit(32), data1: Bit(32), }}
type Input = Stream(AdderInput, d=1);
Group AdderResult {{ data: Bit(32), overflow: Bit(1), }}
type Result = Stream(AdderResult, d=1);
external impl adder_32 of process_unit_s<type Input, type Result>;
streamlet accel_s {{ input: Input in, output: Result out, }}
impl accel_i of accel_s {{
    instance engine(parallelize_i<type Input, type Result, impl adder_32, {channels}>),
    input => engine.input,
    engine.output => output,
}}
top accel_i;
"""


class EightCycleAdder(PrimitiveBehavior):
    """The paper's premise: a 32-bit adder with an 8-cycle latency."""

    latency = 8

    def fire(self, ctx) -> bool:
        if not ctx.has_input("input") or not ctx.can_send("output"):
            return False
        if ctx.get_state("busy_until", 0) > ctx.now:
            return False
        packet = ctx.take("input")
        if packet.value is None:
            ctx.send("output", Packet(None, last=packet.last), delay=self.latency)
            return True
        a, b = packet.value
        ctx.send("output", Packet(((a + b) & 0xFFFFFFFF, 0), last=packet.last), delay=self.latency)
        ctx.set_state("busy_until", ctx.now + self.latency)
        return True


def process(channels: int, packets):
    result = compile_project(SOURCE_TEMPLATE.format(channels=channels))
    simulator = Simulator(
        result.project,
        behaviors={"adder_32": lambda impl: EightCycleAdder(impl)},
        channel_capacity=2,
    )
    simulator.drive("input", packets)
    trace = simulator.run()
    outputs = trace.output_values("output")
    assert len(outputs) == len(packets)
    return trace.end_time


def test_ablation_parallelize_channels(benchmark):
    packets = [(i, i + 7) for i in range(96)]
    sweep = (1, 2, 4, 8)

    def run_sweep():
        return {channels: process(channels, packets) for channels in sweep}

    cycles = run_once(benchmark, run_sweep)

    print("\nparallelize ablation: cycles to process 96 packets through an 8-cycle adder")
    for channels in sweep:
        rate = len(packets) / cycles[channels]
        print(f"  channels={channels}: {cycles[channels]:>5} cycles  ({rate:.2f} packets/cycle)")

    # Monotone improvement, and a clear (>=3x) win for 8 channels over 1.
    assert cycles[1] > cycles[2] > cycles[4] >= cycles[8]
    assert cycles[1] / cycles[8] >= 3.0
