"""Setuptools shim plus build hooks.

The offline build environment has no ``wheel`` package, so PEP 517 editable
installs (which build an editable wheel) fail with ``invalid command
'bdist_wheel'``.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back
to the legacy ``setup.py develop`` path, which needs neither network access
nor the wheel package.  All metadata lives in ``pyproject.toml``.

The ``build_py`` override regenerates the precompiled stdlib AST snapshot
(``src/repro/stdlib/_stdlib_ast.pkl``) from the in-tree sources so every
wheel ships a snapshot stamped with the version it was built from.  Failure
to build it is non-fatal -- the runtime loader (:mod:`repro.stdlib.snapshot`)
falls back to a live parse -- so a build environment that cannot import the
package still produces a working wheel.
"""

import sys
from pathlib import Path

from setuptools import setup
from setuptools.command.build_py import build_py


class BuildPyWithStdlibSnapshot(build_py):
    def run(self):
        self._build_snapshot()
        super().run()

    def _build_snapshot(self):
        src = Path(__file__).resolve().parent / "src"
        old_path = list(sys.path)
        sys.path.insert(0, str(src))
        try:
            from repro.stdlib.snapshot import build_snapshot

            target = build_snapshot()
            print(f"built stdlib AST snapshot: {target}")
        except Exception as exc:  # non-fatal: runtime falls back to live parse
            print(
                f"warning: could not build stdlib AST snapshot ({exc}); "
                "the installed package will live-parse the stdlib instead"
            )
        finally:
            sys.path[:] = old_path


setup(cmdclass={"build_py": BuildPyWithStdlibSnapshot})
