"""Setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 517 editable
installs (which build an editable wheel) fail with ``invalid command
'bdist_wheel'``.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back
to the legacy ``setup.py develop`` path, which needs neither network access
nor the wheel package.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
